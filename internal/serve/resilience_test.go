package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"duel"
	"duel/internal/core"
	"duel/internal/fakedbg"
	"duel/internal/faultdbg"
	"duel/internal/memio"
)

// flakyTarget wraps the differential fixture with a countdown of transient
// read failures: the first failN GetTargetBytes calls fail transiently, the
// rest pass through. failN = -1 fails forever until disarm.
type flakyTarget struct {
	*fakedbg.Fake
	mu    sync.Mutex
	failN int
	calls int
}

func (d *flakyTarget) GetTargetBytes(addr uint64, n int) ([]byte, error) {
	d.mu.Lock()
	d.calls++
	fail := d.failN < 0 || d.calls <= d.failN
	d.mu.Unlock()
	if fail {
		return nil, memio.ErrTransient
	}
	return d.Fake.GetTargetBytes(addr, n)
}

func (d *flakyTarget) disarm() {
	d.mu.Lock()
	d.failN = 0
	d.calls = 1 << 30
	d.mu.Unlock()
}

// TestDeadlineExpiresInQueue pins the deadline-in-queue semantics: a query
// whose deadline lapsed while it sat in the queue is shed with
// ErrDeadlineExceeded before the worker builds a session or touches the
// target lock.
func TestDeadlineExpiresInQueue(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		clk := &fakeClock{t: time.Unix(1_000_000, 0)}
		var factoryCalls atomic.Int64
		srv := New(Config{Workers: 1, now: clk.now})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			factoryCalls.Add(1)
			return duel.NewSession(f, duel.DefaultOptions())
		})
		tst, err := srv.lookup("t")
		if err != nil {
			t.Fatal(err)
		}
		// Hold the target's write lock for the whole test: if the shed
		// path ever tried to acquire the target lock, the query would
		// block here instead of returning.
		tst.rw.Lock()
		locked := true
		defer func() {
			if locked {
				tst.rw.Unlock()
			}
		}()

		// The deadline is already in the past on the pinned clock, so the
		// worker's pickup check sheds deterministically.
		opt := SubmitOptions{Deadline: clk.now().Add(-time.Second)}
		_, err = srv.EvalWith(context.Background(), "t", "x[0]", opt)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("queued-past-deadline query: got %v, want ErrDeadlineExceeded", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("ErrDeadlineExceeded does not match context.DeadlineExceeded: %v", err)
		}
		if n := factoryCalls.Load(); n != 0 {
			t.Fatalf("shed query built %d sessions, want 0", n)
		}
		st := srv.Stats()
		if st.DeadlineExpired != 1 || st.Completed != 0 || st.Admitted != 1 {
			t.Fatalf("stats = %+v, want DeadlineExpired 1, Completed 0, Admitted 1", st)
		}

		tst.rw.Unlock()
		locked = false
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCanceledMidEvalSurfacesCause: a query canceled mid-evaluation surfaces
// *core.CanceledError with the context cause intact through the whole
// serve → session → core chain.
func TestCanceledMidEvalSurfacesCause(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		srv := New(Config{Workers: 1})
		srv.Register("t", f)
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()

		why := errors.New("operator pulled the plug")
		ctx, cancel := context.WithCancelCause(context.Background())
		started := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			first := true
			done <- srv.SubmitContext(ctx, "t", "x[..10]", SubmitOptions{}, func(duel.Result) error {
				if first {
					// Hold the evaluation mid-generator until the caller
					// cancels, then give the eval watchdog real time to
					// trip before the next step's cancel check runs.
					first = false
					close(started)
					<-ctx.Done()
					time.Sleep(20 * time.Millisecond)
				}
				return nil
			})
		}()
		<-started // the evaluation is live, mid-generator
		cancel(why)
		err := <-done

		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("mid-eval cancel: got %v, want *core.CanceledError", err)
		}
		if !errors.Is(err, why) {
			t.Fatalf("cancel cause lost: %v does not wrap %v", err, why)
		}
	})
}

// TestServeRetryAbsorbsExhaustedTransient: a read whose memio retry schedule
// is spent to exhaustion is re-run once at the serve layer under the retry
// budget, and the caller never sees the fault.
func TestServeRetryAbsorbsExhaustedTransient(t *testing.T) {
	checkNoLeak(t, func() {
		// Four straight transient failures exhaust memio's default
		// schedule (1 try + 3 retries) on the first attempt's first read;
		// the serve-layer re-run then sees a healthy target.
		flaky := &flakyTarget{Fake: buildDebuggee(t), failN: 4}
		srv := New(Config{Workers: 1})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(memio.New(flaky, memio.Config{RetryBackoff: time.Microsecond}), duel.DefaultOptions())
		})
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()

		out, err := srv.Eval(context.Background(), "t", "x[0]")
		if err != nil {
			t.Fatalf("query over transient exhaustion: %v", err)
		}
		if len(out) != 1 || out[0].Text != "3" {
			t.Fatalf("retried query result = %v, want [3]", out)
		}
		st := srv.Stats()
		if st.Retried != 1 {
			t.Fatalf("Retried = %d, want 1", st.Retried)
		}
		if st.Admitted != 1 || st.Completed != 1 || st.Failed != 0 {
			t.Fatalf("stats = %+v, want exactly one admission/completion, no failure", st)
		}
	})
}

// TestRetryBudgetBounded: when the bucket is dry, failures surface instead
// of spawning more attempts — retries cannot storm a degraded target.
func TestRetryBudgetBounded(t *testing.T) {
	checkNoLeak(t, func() {
		flaky := &flakyTarget{Fake: buildDebuggee(t), failN: -1}
		srv := New(Config{
			Workers: 1,
			Retry:   RetryConfig{Burst: 1, Ratio: 0.001, Backoff: time.Microsecond},
			Breaker: BreakerConfig{Threshold: 100},
		})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(memio.New(flaky, memio.Config{RetryBackoff: time.Microsecond}), duel.DefaultOptions())
		})
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()

		for i := 0; i < 2; i++ {
			_, err := srv.Eval(context.Background(), "t", "x[0]")
			if !memio.IsRetryExhausted(err) {
				t.Fatalf("query %d against dead target: got %v, want retry-exhausted fault", i, err)
			}
		}
		st := srv.Stats()
		if st.Retried != 1 {
			t.Fatalf("Retried = %d, want 1 (burst spent on query 0, none left for query 1)", st.Retried)
		}
		if st.Completed != 2 || st.Failed != 2 {
			t.Fatalf("stats = %+v, want 2 completions / 2 failures", st)
		}
	})
}

// TestRetryOnCircuitOpen: a breaker rejection is a retryable infra failure —
// the retry burns budget even when the breaker refuses again, and the
// refusal never counts as an admission or completion.
func TestRetryOnCircuitOpen(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		clk := &fakeClock{t: time.Unix(1_000_000, 0)}
		srv := New(Config{
			Workers: 1,
			Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Hour},
			now:     clk.now,
		})
		srv.Register("t", f)
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()
		tst, err := srv.lookup("t")
		if err != nil {
			t.Fatal(err)
		}
		tst.brk.record(false, true)
		tst.brk.record(false, true) // breaker open, cooldown far away

		_, err = srv.Eval(context.Background(), "t", "x[0]")
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-breaker query: got %v, want ErrCircuitOpen", err)
		}
		st := srv.Stats()
		if st.Retried != 1 {
			t.Fatalf("Retried = %d, want 1 (the rejection was retried once)", st.Retried)
		}
		if st.FastFails != 2 {
			t.Fatalf("FastFails = %d, want 2 (original + retry both refused)", st.FastFails)
		}
		if st.Admitted != 0 || st.Completed != 0 {
			t.Fatalf("stats = %+v, want no admissions or completions for refused attempts", st)
		}
	})
}

// hedgedFixture builds a server whose first pooled session is latency-poisoned
// (every memory op sleeps) and whose later sessions are clean: the primary
// attempt lands on the slow session, the hedge on a fast one.
func hedgedFixture(t *testing.T, f *fakedbg.Fake, cfg Config) *Server {
	t.Helper()
	var sessions atomic.Int64
	srv := New(cfg)
	srv.RegisterFactory("t", func() (*duel.Session, error) {
		if sessions.Add(1) == 1 {
			inj := faultdbg.New(f, faultdbg.Plan{
				Seed:    1,
				Rates:   map[faultdbg.Kind]float64{faultdbg.Latency: 1},
				Latency: 10 * time.Millisecond,
			})
			return duel.NewSession(inj, duel.DefaultOptions())
		}
		return duel.NewSession(f, duel.DefaultOptions())
	})
	return srv
}

// TestHedgedReadWins: with the primary attempt stuck on a slow session, the
// hedge fires after the pinned delay, wins, and delivers the full result —
// while the pair still counts as exactly one admission and one completion.
func TestHedgedReadWins(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		want, wantErr := sesExec(t, f, "x[..10]")
		if wantErr != "<nil>" {
			t.Fatal(wantErr)
		}

		srv := hedgedFixture(t, f, Config{
			Workers: 2,
			Hedge:   HedgeConfig{Enabled: true, Delay: time.Millisecond},
		})
		var buf bytes.Buffer
		if err := srv.Exec(context.Background(), "t", &buf, "x[..10]"); err != nil {
			t.Fatalf("hedged query: %v", err)
		}
		if got := buf.String(); got != want {
			t.Fatalf("hedged output = %q, want %q", got, want)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		st := srv.Stats()
		if st.Hedged != 1 || st.HedgeWins != 1 {
			t.Fatalf("Hedged/HedgeWins = %d/%d, want 1/1", st.Hedged, st.HedgeWins)
		}
		if st.Admitted != 1 || st.Completed != 1 || st.Failed != 0 {
			t.Fatalf("stats = %+v, want exactly one admission and one completion", st)
		}
	})
}

// TestHedgeRefusesMutatingQuery: a mutating query may be hedged by the
// caller, but the hedge attempt is refused at classification time and the
// write executes exactly once.
func TestHedgeRefusesMutatingQuery(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		srv := hedgedFixture(t, f, Config{
			Workers: 2,
			Hedge:   HedgeConfig{Enabled: true, Delay: time.Millisecond},
		})
		// x[3] starts at -1; += 7 exactly once leaves 6, twice would leave 13.
		if _, err := srv.Eval(context.Background(), "t", "x[3] += 7"); err != nil {
			t.Fatalf("hedged mutating query: %v", err)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		got, gotErr := sesExec(t, f, "x[3]")
		if gotErr != "<nil>" || got != "x[3] = 6\n" {
			t.Fatalf("x[3] after hedged += : %q (err %s), want 6 written exactly once", got, gotErr)
		}
		st := srv.Stats()
		if st.Hedged != 1 || st.HedgeWins != 0 {
			t.Fatalf("Hedged/HedgeWins = %d/%d, want 1/0 (hedge refused, primary won)", st.Hedged, st.HedgeWins)
		}
		if st.Admitted != 1 || st.Completed != 1 || st.Failed != 0 {
			t.Fatalf("stats = %+v, want exactly one admission and one completion", st)
		}
	})
}

// healthFixture: a server over a switchable always-failing target, retries
// off and the breaker out of the way so the health state machine is the
// only actor, on a pinned clock.
func healthFixture(t *testing.T) (*Server, *flakyTarget, *fakeClock) {
	t.Helper()
	flaky := &flakyTarget{Fake: buildDebuggee(t), failN: -1}
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	srv := New(Config{
		Workers: 1,
		Retry:   RetryConfig{Disabled: true},
		Breaker: BreakerConfig{Threshold: 1 << 30},
		now:     clk.now,
	})
	srv.RegisterFactory("t", func() (*duel.Session, error) {
		return duel.NewSession(memio.New(flaky, memio.Config{RetryBackoff: time.Microsecond}), duel.DefaultOptions())
	})
	return srv, flaky, clk
}

// driveHealth pumps read queries until the target reaches the wanted state.
func driveHealth(t *testing.T, srv *Server, want HealthState) {
	t.Helper()
	for i := 0; i < 64; i++ {
		st, err := srv.TargetHealth("t")
		if err != nil {
			t.Fatal(err)
		}
		if st == want {
			return
		}
		_, _ = srv.Eval(context.Background(), "t", "x[0]")
	}
	st, _ := srv.TargetHealth("t")
	t.Fatalf("target never reached %v (stuck at %v)", want, st)
}

// TestBrownoutShedsWritesServesReads pins the graded response: a degraded
// target sheds mutating queries with ErrBrownout while read-only queries
// keep being served, and recovers to healthy once reads succeed again.
func TestBrownoutShedsWritesServesReads(t *testing.T) {
	checkNoLeak(t, func() {
		srv, flaky, _ := healthFixture(t)
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()

		driveHealth(t, srv, TargetBrownout)

		// Writes shed...
		_, err := srv.Eval(context.Background(), "t", "x[0] = 11")
		if !errors.Is(err, ErrBrownout) {
			t.Fatalf("write against browned-out target: got %v, want ErrBrownout", err)
		}
		// ...while reads keep flowing: heal the substrate and the very
		// next read (still under brownout) completes.
		flaky.disarm()
		if st, _ := srv.TargetHealth("t"); st != TargetBrownout {
			t.Fatalf("state before read = %v, want brownout", st)
		}
		if _, err := srv.Eval(context.Background(), "t", "x[0]"); err != nil {
			t.Fatalf("read under brownout: %v", err)
		}

		// Successes pull the score back up; the brownout lifts and writes
		// flow again.
		driveHealth(t, srv, TargetHealthy)
		if _, err := srv.Eval(context.Background(), "t", "x[0] = 11"); err != nil {
			t.Fatalf("write after recovery: %v", err)
		}
		st := srv.Stats()
		if st.Brownouts != 1 || st.BrownoutSheds != 1 {
			t.Fatalf("Brownouts/BrownoutSheds = %d/%d, want 1/1", st.Brownouts, st.BrownoutSheds)
		}
		if st.Quarantined != 0 {
			t.Fatalf("Quarantined = %d, want 0 (never collapsed that far)", st.Quarantined)
		}
	})
}

// TestQuarantineProbeReadmission pins the full collapse and the probe-based
// way back: quarantined queries fail fast without touching the target, and
// one clean probe per interval restores service.
func TestQuarantineProbeReadmission(t *testing.T) {
	checkNoLeak(t, func() {
		srv, flaky, clk := healthFixture(t)
		defer func() {
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()

		driveHealth(t, srv, TargetQuarantined)

		// Fail fast, without touching the substrate.
		flaky.mu.Lock()
		callsBefore := flaky.calls
		flaky.mu.Unlock()
		_, err := srv.Eval(context.Background(), "t", "x[0]")
		if !errors.Is(err, ErrQuarantined) {
			t.Fatalf("quarantined query: got %v, want ErrQuarantined", err)
		}
		flaky.mu.Lock()
		callsAfter := flaky.calls
		flaky.mu.Unlock()
		if callsAfter != callsBefore {
			t.Fatalf("fast-fail touched the target: %d reads -> %d", callsBefore, callsAfter)
		}

		// Heal the substrate; within one probe interval the next query is
		// admitted as the probe, completes cleanly, and re-admits the
		// target entirely.
		flaky.disarm()
		clk.advance(DefaultProbeInterval + time.Millisecond)
		if _, err := srv.Eval(context.Background(), "t", "x[0]"); err != nil {
			t.Fatalf("probe after recovery: %v", err)
		}
		if st, _ := srv.TargetHealth("t"); st != TargetHealthy {
			t.Fatalf("state after clean probe = %v, want healthy", st)
		}
		if _, err := srv.Eval(context.Background(), "t", "x[0] = 11"); err != nil {
			t.Fatalf("write after re-admission: %v", err)
		}
		st := srv.Stats()
		if st.Quarantined != 1 {
			t.Fatalf("Quarantined transitions = %d, want 1", st.Quarantined)
		}
		if st.QuarantineFails == 0 {
			t.Fatal("QuarantineFails = 0, want at least the one fast-failed query")
		}
	})
}

// TestShutdownDrainsHedgedPairs is the Shutdown-vs-hedging regression: a
// hedged pair counts as exactly one completion, the drain waits for both
// attempts of every in-flight pair, and Completed never exceeds Admitted at
// any observable moment — mid-storm, mid-drain, or after.
func TestShutdownDrainsHedgedPairs(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)

		// Phase A — exactly-once accounting: every query hedges (the
		// delay is effectively zero), every query completes, and the
		// counters come out exactly 1:1 with the queries issued.
		srv := New(Config{
			Workers: 4,
			Hedge:   HedgeConfig{Enabled: true, Delay: time.Nanosecond},
		})
		srv.Register("t", f)
		const phaseA = 40
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < phaseA/4; i++ {
					if _, err := srv.Eval(context.Background(), "t", "x[..10] >? 4"); err != nil {
						t.Errorf("phase A query: %v", err)
					}
				}
			}()
		}
		wg.Wait()
		st := srv.Stats()
		if st.Completed != phaseA || st.Admitted != phaseA {
			t.Fatalf("phase A stats = %+v, want Admitted = Completed = %d", st, phaseA)
		}
		if st.Hedged == 0 {
			t.Fatal("phase A issued no hedges; the exactly-once claim was not exercised")
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}

		// Phase B — drain under fire: slow sessions keep pairs in flight
		// while Shutdown drains, a poller watches the invariant live, and
		// the drain must collect both halves of every pair (checkNoLeak
		// around the whole test catches a stranded loser).
		srv = hedgedFixture(t, f, Config{
			Workers: 4,
			Hedge:   HedgeConfig{Enabled: true, Delay: 200 * time.Microsecond},
		})
		stop := make(chan struct{})
		var violations atomic.Int64
		var poll sync.WaitGroup
		poll.Add(1)
		go func() {
			defer poll.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := srv.Stats(); s.Completed > s.Admitted {
					violations.Add(1)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := srv.Eval(context.Background(), "t", "x[..10] >? 4")
					if errors.Is(err, ErrDraining) {
						return
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond)
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(stop)
		poll.Wait()
		if n := violations.Load(); n != 0 {
			t.Fatalf("Completed > Admitted observed %d times during the hedged drain", n)
		}
		if s := srv.Stats(); s.Completed > s.Admitted {
			t.Fatalf("final stats violate the invariant: %+v", s)
		}
	})
}
