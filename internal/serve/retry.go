package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// retry.go: the serve layer's retry budget.
//
// memio already retries transient faults per memory operation; what reaches
// the serve layer is a query whose whole low-level schedule was spent
// (memio.RetryExhaustedError) or one the breaker refused in passing
// (ErrCircuitOpen during a half-open probe window). Re-running such a query
// once on a fresh session often succeeds — a different pooled accessor, a
// recovered probe — but unconditional retries double the offered load on a
// target exactly when it is sickest. The classic answer is a token-bucket
// retry budget (retries capped to a fraction of recent successful traffic):
// isolated faults get retried essentially always, correlated failure storms
// exhaust the bucket and degrade to single attempts.

// Retry defaults. A zero RetryConfig enables retries with these values; set
// Disabled to opt out.
const (
	DefaultRetryRatio   = 0.1 // retry capacity earned per completed query
	DefaultRetryBurst   = 8   // bucket cap, in whole retries
	DefaultRetryBackoff = time.Millisecond
)

// RetryConfig tunes the per-target serve-layer retry budget.
type RetryConfig struct {
	// Disabled turns serve-layer retries off entirely.
	Disabled bool
	// Ratio is the fraction of a retry token earned per completed query
	// (0 means DefaultRetryRatio, i.e. retries ≤ ~10% of recent traffic).
	Ratio float64
	// Burst caps the bucket in whole retries (0 means DefaultRetryBurst).
	// The bucket starts full so isolated faults retry from the first query.
	Burst int
	// Backoff is the pause before the retry attempt (0 means
	// DefaultRetryBackoff); it is cut short by the caller's context.
	Backoff time.Duration
}

// retryScale is the fixed-point unit: one whole retry token.
const retryScale = 1 << 20

// retryBudget is a lock-free token bucket. earn() on the completion path is
// lossy in the same way the breaker's closed path is: a racing pair of
// earns may overshoot the cap by one sample, which take() tolerates.
type retryBudget struct {
	disabled bool
	earnFP   int64
	capFP    int64
	backoff  time.Duration
	tokens   atomic.Int64
}

func newRetryBudget(cfg RetryConfig) *retryBudget {
	b := &retryBudget{disabled: cfg.Disabled}
	ratio := cfg.Ratio
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	b.backoff = cfg.Backoff
	if b.backoff <= 0 {
		b.backoff = DefaultRetryBackoff
	}
	b.earnFP = int64(ratio * retryScale)
	b.capFP = int64(burst) * retryScale
	b.tokens.Store(b.capFP)
	return b
}

// earn credits the budget for one completed query.
func (b *retryBudget) earn() {
	if b.disabled {
		return
	}
	if t := b.tokens.Load(); t < b.capFP {
		b.tokens.Add(b.earnFP)
	}
}

// take spends one whole retry token; false means the budget is dry and the
// caller must surface the original failure instead of retrying.
func (b *retryBudget) take() bool {
	if b.disabled {
		return false
	}
	for {
		t := b.tokens.Load()
		if t < retryScale {
			return false
		}
		if b.tokens.CompareAndSwap(t, t-retryScale) {
			return true
		}
	}
}

// sleepCtx pauses for d unless ctx dies first; it reports whether the full
// pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
