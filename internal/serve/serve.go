// Package serve is a concurrent DUEL evaluation service: many queries
// multiplexed over pooled sessions against shared debug targets.
//
// Hanson's revisited machine-independent debugger (PAPERS.md) recasts the
// debugger as a client/server system over the same narrow nub interface this
// repository's dbgif.Debugger reproduces; once the debugger is a server, one
// slow, sick or wedged target must not take the service down with it. The
// serving layer composes the robustness primitives built in the layers
// below — core.EvalContext's cancellation watchdog, memio's interruptible
// retry/interrupt machinery, faultdbg's reproducible sickness — into a
// server with explicit operational behavior:
//
//   - Admission control. A bounded worker pool pulls queries from a bounded
//     queue; when the queue is full the server sheds the query immediately
//     with ErrOverloaded instead of queueing unboundedly and deadlocking
//     under overload.
//   - Per-target circuit breakers. Repeated infrastructure failures
//     (unretryable transient faults, wedged calls, evaluation timeouts)
//     trip the target's breaker; while open, queries against it fail fast
//     with ErrCircuitOpen instead of tying workers up on a sick target, and
//     a half-open probe closes the breaker once the target recovers.
//   - Per-query governance. Every evaluation runs under the session's
//     MaxSteps/Timeout limits composed with the caller's context: canceling
//     the context cancels the evaluator at its next step check AND
//     interrupts the memory chain, so even a query wedged inside a hanging
//     target call unwinds promptly.
//   - Graceful drain. Shutdown stops admissions, lets admitted queries
//     finish, and past the caller's deadline revokes what is still running;
//     it leaks no goroutines either way.
//
// Sessions are pooled per target: a duel.Session evaluates one expression
// at a time (its name-resolution stack and step budget are per-evaluation
// state), so parallelism across queries comes from a pool of sessions, each
// with its own memio.Accessor — which also keeps one query's interrupt from
// aborting its neighbors. The target below the pool has no synchronization
// of its own, so the server classifies each query by AST walk: queries that
// only read target memory share the target under a read lock, while
// mutating queries (assignments, ++/--, target calls, declarations, interned
// string literals) get it exclusively, and every pooled accessor is flushed
// before the write lock drops so no session serves stale bytes.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"duel"
	"duel/internal/core"
	"duel/internal/dbgif"
	"duel/internal/duel/ast"
	"duel/internal/memio"
)

// Typed admission errors. Callers match them with errors.Is.
var (
	// ErrOverloaded: the queue was full; the query was shed un-run.
	ErrOverloaded = errors.New("serve: overloaded, query shed")
	// ErrDraining: the server is shutting down and admits nothing new.
	ErrDraining = errors.New("serve: draining, query refused")
	// ErrCircuitOpen: the target's circuit breaker is open; the query
	// failed fast without touching the target.
	ErrCircuitOpen = errors.New("serve: circuit open, failing fast")
	// ErrUnknownTarget: no target registered under that name.
	ErrUnknownTarget = errors.New("serve: unknown target")
)

// Serving defaults, chosen so a zero Config yields a usable server: enough
// workers to exploit the host, a queue deep enough to absorb bursts but
// shallow enough that overload sheds within one scheduling quantum, and
// finite per-query safety limits (an unbounded serve session would let one
// runaway "e.." query pin a worker forever).
const (
	DefaultQueueFactor = 2                // QueueDepth = factor × Workers
	DefaultMaxSteps    = 1 << 22          // per-query step budget
	DefaultTimeout     = 30 * time.Second // per-query wall-clock budget
)

// Config tunes a Server.
type Config struct {
	// Workers is the number of evaluation workers. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries admitted but not yet running. 0 means
	// DefaultQueueFactor × Workers; beyond it, queries shed with
	// ErrOverloaded.
	QueueDepth int
	// Session is the option template for pooled sessions. A zero value
	// means duel.DefaultOptions; zero MaxSteps/Timeout get the serving
	// defaults either way, so serve sessions are always bounded.
	Session duel.Options
	// Breaker tunes the per-target circuit breakers.
	Breaker BreakerConfig

	// now overrides the breaker clock in tests.
	now func() time.Time
}

// Stats is a snapshot of a Server's admission and outcome counters.
// Breaker counters aggregate over all registered targets.
type Stats struct {
	Admitted  int64 // queries accepted into the queue
	Completed int64 // admitted queries that ran to completion (ok or error)
	Failed    int64 // completed queries whose evaluation returned an error
	Shed      int64 // refused with ErrOverloaded
	Drained   int64 // refused with ErrDraining, or canceled while queued
	FastFails int64 // refused with ErrCircuitOpen
	Trips     int64 // breaker trips
}

type serverState int

const (
	stateServing serverState = iota
	stateDraining
)

// Server is the concurrent evaluation service. Create it with New, add
// targets with Register, then call Eval/Exec from any number of
// goroutines. Shut it down exactly once with Shutdown.
type Server struct {
	cfg Config

	// admitMu arbitrates admission against drain: every enqueue holds it
	// for reading across the state check AND the queue send, and Shutdown
	// flips the state holding it for writing — so once Shutdown returns
	// from that flip, no query can slip into the queue behind the drain.
	admitMu sync.RWMutex
	state   serverState
	queue   chan *job

	targetMu sync.RWMutex
	targets  map[string]*targetState

	wg      sync.WaitGroup
	drainCh chan struct{} // closed when Shutdown begins

	// hardCtx cancels in-flight evaluations when the drain deadline
	// passes; every evaluation runs under it.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	outMu sync.Mutex // serializes Exec flushes to shared io.Writers

	statsMu sync.Mutex
	stats   Stats
}

// targetState is one registered target: its session pool, breaker, and the
// read/write lock that keeps mutating queries exclusive.
type targetState struct {
	name    string
	factory func() (*duel.Session, error)
	brk     *breaker

	// rw lets read-only queries share the target; mutating queries take it
	// exclusively (the substrate below the sessions is unsynchronized).
	rw sync.RWMutex

	poolMu sync.Mutex
	idle   []*duel.Session
	all    []*duel.Session // every session ever created, for post-write flushes
}

// job is one admitted query.
type job struct {
	ctx   context.Context
	t     *targetState
	src   string
	emit  func(duel.Result) error
	probe bool // this query is its target's half-open breaker probe
	done  chan error
}

// New starts a server with cfg's worker pool running. It performs no I/O;
// register targets before submitting queries.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueFactor * cfg.Workers
	}
	if cfg.Session.Backend == "" {
		cfg.Session = duel.DefaultOptions()
	}
	if cfg.Session.Eval.MaxSteps == 0 {
		cfg.Session.Eval.MaxSteps = DefaultMaxSteps
	}
	if cfg.Session.Eval.Timeout == 0 {
		cfg.Session.Eval.Timeout = DefaultTimeout
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		targets: make(map[string]*targetState),
		drainCh: make(chan struct{}),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Register adds a target under name, serving it with sessions built from
// the server's session options. Registering a name twice replaces the old
// target (its pooled sessions are dropped; in-flight queries finish against
// the old one).
func (s *Server) Register(name string, d dbgif.Debugger) {
	opts := s.cfg.Session
	s.RegisterFactory(name, func() (*duel.Session, error) {
		return duel.NewSession(d, opts)
	})
}

// RegisterFactory adds a target whose pooled sessions come from factory —
// for callers that want a private middleware chain (e.g. a fault injector)
// per session, so one session's Interrupt cannot cross-talk into another's.
func (s *Server) RegisterFactory(name string, factory func() (*duel.Session, error)) {
	t := &targetState{
		name:    name,
		factory: factory,
		brk:     newBreaker(s.cfg.Breaker, s.cfg.now),
	}
	s.targetMu.Lock()
	s.targets[name] = t
	s.targetMu.Unlock()
}

// lookup resolves a registered target.
func (s *Server) lookup(name string) (*targetState, error) {
	s.targetMu.RLock()
	t := s.targets[name]
	s.targetMu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	return t, nil
}

// BreakerState reports the named target's breaker state.
func (s *Server) BreakerState(name string) (BreakerState, error) {
	t, err := s.lookup(name)
	if err != nil {
		return BreakerClosed, err
	}
	st, _, _ := t.brk.snapshot()
	return st, nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	s.targetMu.RLock()
	for _, t := range s.targets {
		_, trips, fastFails := t.brk.snapshot()
		st.Trips += trips
		st.FastFails += fastFails
	}
	s.targetMu.RUnlock()
	return st
}

func (s *Server) bump(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// Eval evaluates src against the named target, collecting all produced
// values. It blocks until the query completes, is shed, or is canceled;
// canceling ctx revokes the query even mid-evaluation.
func (s *Server) Eval(ctx context.Context, target, src string) ([]duel.Result, error) {
	var mu sync.Mutex
	var out []duel.Result
	err := s.submit(ctx, target, src, func(r duel.Result) error {
		mu.Lock()
		out = append(out, r)
		mu.Unlock()
		return nil
	})
	return out, err
}

// Exec evaluates src against the named target and writes one line per value
// to w, with the session's MaxOutput truncation behavior. Output is
// buffered per query and written with a single serialized Write, so any
// number of concurrent queries can share one io.Writer without interleaving
// mid-line.
func (s *Server) Exec(ctx context.Context, target string, w io.Writer, src string) error {
	maxOut := s.cfg.Session.MaxOutput
	var buf bytes.Buffer
	count := 0
	err := s.submit(ctx, target, src, func(r duel.Result) error {
		count++
		if maxOut > 0 && count > maxOut {
			fmt.Fprintf(&buf, "... (output truncated at %d lines)\n", maxOut)
			return errTruncated
		}
		_, err := fmt.Fprintln(&buf, r.Line())
		return err
	})
	if errors.Is(err, errTruncated) {
		err = nil
	}
	if buf.Len() > 0 {
		s.outMu.Lock()
		_, werr := w.Write(buf.Bytes())
		s.outMu.Unlock()
		if err == nil {
			err = werr
		}
	}
	return err
}

// errTruncated mirrors the session-level sentinel: truncation is not a
// failure.
var errTruncated = errors.New("serve: output truncated")

// submit runs one query through admission, the queue, and a worker. emit is
// called from the worker goroutine; the happens-before edge of the done
// channel makes whatever it wrote visible to the caller afterwards.
func (s *Server) submit(ctx context.Context, target, src string, emit func(duel.Result) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t, err := s.lookup(target)
	if err != nil {
		return err
	}

	s.admitMu.RLock()
	if s.state != stateServing {
		s.admitMu.RUnlock()
		s.bump(func(st *Stats) { st.Drained++ })
		return ErrDraining
	}
	probe, err := t.brk.admit()
	if err != nil {
		s.admitMu.RUnlock()
		return fmt.Errorf("target %q: %w", target, err)
	}
	j := &job{ctx: ctx, t: t, src: src, emit: emit, probe: probe, done: make(chan error, 1)}
	select {
	case s.queue <- j:
		s.admitMu.RUnlock()
	default:
		s.admitMu.RUnlock()
		if probe {
			t.brk.cancelProbe()
		}
		s.bump(func(st *Stats) { st.Shed++ })
		return ErrOverloaded
	}
	s.bump(func(st *Stats) { st.Admitted++ })

	// Always wait for the worker: the evaluation itself is revocable
	// through ctx, so this wait is bounded by the caller's own deadline,
	// and never returning early keeps emit's writes race-free.
	return <-j.done
}

// worker pulls jobs until drain, then finishes whatever is still queued.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			j.done <- s.run(j)
		case <-s.drainCh:
			for {
				select {
				case j := <-s.queue:
					j.done <- s.run(j)
				default:
					return
				}
			}
		}
	}
}

// run executes one admitted query on the calling worker.
func (s *Server) run(j *job) error {
	if err := context.Cause(j.ctx); err != nil {
		// The caller gave up while the query was queued.
		if j.probe {
			j.t.brk.cancelProbe()
		}
		s.bump(func(st *Stats) { st.Drained++ })
		return &core.CanceledError{Cause: err}
	}
	if s.hardCtx.Err() != nil {
		// The drain deadline passed while the query was queued.
		if j.probe {
			j.t.brk.cancelProbe()
		}
		s.bump(func(st *Stats) { st.Drained++ })
		return ErrDraining
	}

	ses, err := j.t.session()
	if err != nil {
		if j.probe {
			j.t.brk.cancelProbe()
		}
		s.bump(func(st *Stats) { st.Completed++; st.Failed++ })
		return err
	}
	n, perr := ses.ParseCached(j.src)
	if perr != nil {
		// A parse error never reached the target; it says nothing about
		// target health, so the breaker does not hear about it.
		if j.probe {
			j.t.brk.cancelProbe()
		}
		j.t.release(ses, false)
		s.bump(func(st *Stats) { st.Completed++; st.Failed++ })
		return perr
	}

	// Compose the caller's context with the server's drain deadline.
	ctx, cancel := context.WithCancel(j.ctx)
	stop := context.AfterFunc(s.hardCtx, cancel)

	mutating := MutatesTarget(n)
	if mutating {
		j.t.rw.Lock()
	} else {
		j.t.rw.RLock()
	}
	err = ses.EvalNodeContext(ctx, n, j.emit)
	if mutating {
		// Every pooled session has its own accessor over the shared
		// substrate; drop their cached/prefetched pages before readers
		// come back so none serves pre-write bytes.
		j.t.flushAll()
		j.t.rw.Unlock()
	} else {
		j.t.rw.RUnlock()
	}
	stop()
	cancel()

	j.t.brk.record(j.probe, infraFailure(err))
	j.t.release(ses, Pollutes(n))
	s.bump(func(st *Stats) {
		st.Completed++
		if err != nil {
			st.Failed++
		}
	})
	return err
}

// Shutdown drains the server: admissions stop immediately, queries already
// admitted run to completion, and once ctx expires whatever is still
// running is revoked (its callers see *core.CanceledError) and whatever is
// still queued is refused with ErrDraining. It returns nil after a clean
// drain, ctx's error if the deadline forced revocation — in both cases only
// after every worker goroutine has exited, so a Shutdown that returned
// leaks nothing. Subsequent queries fail with ErrDraining; subsequent
// Shutdowns are no-ops that wait the same way.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.admitMu.Lock()
	if s.state == stateServing {
		s.state = stateDraining
		close(s.drainCh)
	}
	s.admitMu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		s.hardCancel()
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-workersDone
		return ctx.Err()
	}
}

// session pops an idle pooled session or builds a fresh one.
func (t *targetState) session() (*duel.Session, error) {
	t.poolMu.Lock()
	if n := len(t.idle); n > 0 {
		ses := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.poolMu.Unlock()
		return ses, nil
	}
	t.poolMu.Unlock()
	ses, err := t.factory()
	if err != nil {
		return nil, err
	}
	t.poolMu.Lock()
	t.all = append(t.all, ses)
	t.poolMu.Unlock()
	return ses, nil
}

// release returns a session to the pool. polluted marks a query that grew
// session-local state (aliases, DUEL declarations, interned strings); such
// sessions are wiped so every pooled session stays interchangeable — a
// follow-up query must not see another caller's x := alias.
func (t *targetState) release(ses *duel.Session, polluted bool) {
	if polluted {
		ses.ClearAliases()
	}
	t.poolMu.Lock()
	t.idle = append(t.idle, ses)
	t.poolMu.Unlock()
}

// flushAll drops every session accessor's resident pages. Called with the
// target write lock held, after a mutating query.
func (t *targetState) flushAll() {
	t.poolMu.Lock()
	all := t.all
	t.poolMu.Unlock()
	for _, ses := range all {
		ses.Mem().Flush()
	}
}

// MutatesTarget reports whether the tree can write target memory or run
// target code: assignments, increments/decrements, target calls,
// declarations and interned string literals (both allocate target space).
// Alias definitions (x := e) are session-local state, not target writes.
func MutatesTarget(n *ast.Node) bool {
	if n == nil {
		return false
	}
	switch n.Op {
	case ast.OpAssign, ast.OpAddAssign, ast.OpSubAssign, ast.OpMulAssign,
		ast.OpDivAssign, ast.OpModAssign, ast.OpAndAssign, ast.OpOrAssign,
		ast.OpXorAssign, ast.OpShlAssign, ast.OpShrAssign,
		ast.OpPreInc, ast.OpPreDec, ast.OpPostInc, ast.OpPostDec,
		ast.OpCall, ast.OpDecl, ast.OpStr:
		return true
	}
	for _, k := range n.Kids {
		if MutatesTarget(k) {
			return true
		}
	}
	return false
}

// Pollutes reports whether the tree leaves session-local state behind that
// would make the session non-interchangeable in the pool.
func Pollutes(n *ast.Node) bool {
	if n == nil {
		return false
	}
	if n.Op == ast.OpDefine || n.Op == ast.OpDecl || n.Op == ast.OpStr {
		return true
	}
	for _, k := range n.Kids {
		if Pollutes(k) {
			return true
		}
	}
	return false
}

// infraFailure classifies an evaluation error for the circuit breaker: true
// for failures that indicate a sick target — transient faults the retry
// budget could not absorb, wedged or failed operations, evaluation
// timeouts — and false for everything that is the query's (or caller's) own
// doing: clean success, parse and type errors, step-limit hits, context
// cancellation, and the paper's garbage-pointer unmapped/short reads, which
// condemn the query's pointer, not the target.
func infraFailure(err error) bool {
	if err == nil {
		return false
	}
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		return false
	}
	var te *core.TimeoutError
	if errors.As(err, &te) {
		return true
	}
	var f *memio.Fault
	if errors.As(err, &f) {
		return f.Kind == memio.KindTransient || f.Kind == memio.KindOther
	}
	return false
}
