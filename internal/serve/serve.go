// Package serve is a concurrent DUEL evaluation service: many queries
// multiplexed over pooled sessions against shared debug targets.
//
// Hanson's revisited machine-independent debugger (PAPERS.md) recasts the
// debugger as a client/server system over the same narrow nub interface this
// repository's dbgif.Debugger reproduces; once the debugger is a server, one
// slow, sick or wedged target must not take the service down with it. The
// serving layer composes the robustness primitives built in the layers
// below — core.EvalContext's cancellation watchdog, memio's interruptible
// retry/interrupt machinery, faultdbg's reproducible sickness — into a
// server with explicit operational behavior:
//
//   - Admission control. A bounded worker pool pulls queries from a bounded
//     queue; when the queue is full the server sheds the query immediately
//     with ErrOverloaded instead of queueing unboundedly and deadlocking
//     under overload.
//   - Per-target circuit breakers. Repeated infrastructure failures
//     (unretryable transient faults, wedged calls, evaluation timeouts)
//     trip the target's breaker; while open, queries against it fail fast
//     with ErrCircuitOpen instead of tying workers up on a sick target, and
//     a half-open probe closes the breaker once the target recovers.
//   - Per-query governance. Every evaluation runs under the session's
//     MaxSteps/Timeout limits composed with the caller's context: canceling
//     the context cancels the evaluator at its next step check AND
//     interrupts the memory chain, so even a query wedged inside a hanging
//     target call unwinds promptly.
//   - Graceful drain. Shutdown stops admissions, lets admitted queries
//     finish, and past the caller's deadline revokes what is still running;
//     it leaks no goroutines either way.
//   - Deadline propagation. A per-query deadline (SubmitOptions.Deadline or
//     the caller's context) rides the job through the queue: a query whose
//     deadline lapses while queued is shed with ErrDeadlineExceeded before
//     a worker acquires a session or the target lock, and one that makes it
//     out evaluates under a context carrying the deadline, so expiry
//     mid-eval cancels the evaluator AND interrupts the memory chain.
//   - Retry budgets. Transient infrastructure failures — a memio retry
//     schedule spent to exhaustion, a breaker half-open rejection — are
//     retried once at the serve layer under a per-target token-bucket
//     budget (retry.go): isolated faults heal invisibly, correlated storms
//     drain the bucket and degrade to single attempts instead of doubling
//     the load on a sick target.
//   - Hedged reads. Opt-in (Config.Hedge / SubmitOptions.Hedge): a
//     read-only query fires a second attempt on another worker after an
//     adaptive delay derived from the target's recent latency; the first
//     result wins, the loser is canceled through its context, and the pair
//     counts as exactly one admission and one completion (hedge.go).
//   - Target health: brownout before quarantine. A per-target score fed by
//     infra-failure and latency signals generalizes the breaker
//     (health.go): a degraded target first browns out — mutating queries
//     shed with ErrBrownout while read-only ones keep flowing under the
//     shared read lock — and only a truly sick one quarantines, failing
//     fast with ErrQuarantined until a periodic probe completes cleanly.
//
// Sessions are pooled per target: a duel.Session evaluates one expression
// at a time (its name-resolution stack and step budget are per-evaluation
// state), so parallelism across queries comes from a pool of sessions, each
// with its own memio.Accessor — which also keeps one query's interrupt from
// aborting its neighbors. The target below the pool has no synchronization
// of its own, so the server classifies each query by AST walk: queries that
// only read target memory share the target under a read lock, while
// mutating queries (assignments, ++/--, target calls, declarations, interned
// string literals) get it exclusively.
//
// The read path is built to scale with the worker count. DUEL traffic is
// read-dominated — "x[..n] >? v" walks memory without writing it — so
// everything a read-only query touches per-query is either worker-local or
// lock-free:
//
//   - Counters are atomic (no stats mutex on the hot path).
//   - Each worker keeps session affinity with the last target it served, so
//     a steady stream against one target never touches the pool mutex.
//   - Post-write cache invalidation is epoch-based: a mutating query bumps
//     the target's write epoch and each session lazily flushes its own page
//     cache the next time it observes a new epoch, instead of the writer
//     walking and flushing every pooled accessor while readers wait.
//   - The breaker's closed-state admit/record path is atomic.
//   - Jobs (and their one-shot done channels) are recycled through a
//     sync.Pool, so the submit→worker→submit round-trip is two direct
//     channel handoffs with no per-query allocation of its own.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"duel"
	"duel/internal/core"
	"duel/internal/dbgif"
	"duel/internal/duel/ast"
	"duel/internal/memio"
)

// Typed admission errors. Callers match them with errors.Is.
var (
	// ErrOverloaded: the queue was full; the query was shed un-run.
	ErrOverloaded = errors.New("serve: overloaded, query shed")
	// ErrDraining: the server is shutting down and admits nothing new.
	ErrDraining = errors.New("serve: draining, query refused")
	// ErrCircuitOpen: the target's circuit breaker is open; the query
	// failed fast without touching the target.
	ErrCircuitOpen = errors.New("serve: circuit open, failing fast")
	// ErrUnknownTarget: no target registered under that name.
	ErrUnknownTarget = errors.New("serve: unknown target")
	// ErrDeadlineExceeded: the query's deadline lapsed while it sat in the
	// queue; it was shed before touching a session or the target lock. It
	// matches errors.Is(err, context.DeadlineExceeded) too, so callers that
	// only know about contexts classify it correctly.
	ErrDeadlineExceeded = fmt.Errorf("serve: deadline exceeded while queued: %w", context.DeadlineExceeded)
	// ErrQuarantined: the target's health score collapsed; everything but
	// periodic probes fails fast until a probe completes cleanly.
	ErrQuarantined = errors.New("serve: target quarantined, failing fast")
	// ErrBrownout: the target is degraded; mutating queries are shed while
	// read-only ones keep being served.
	ErrBrownout = errors.New("serve: target browned out, mutating query shed")
)

// Serving defaults, chosen so a zero Config yields a usable server: enough
// workers to exploit the host, a queue deep enough to absorb bursts but
// shallow enough that overload sheds within one scheduling quantum, and
// finite per-query safety limits (an unbounded serve session would let one
// runaway "e.." query pin a worker forever).
const (
	DefaultQueueFactor = 2                // QueueDepth = factor × Workers
	DefaultMaxSteps    = 1 << 22          // per-query step budget
	DefaultTimeout     = 30 * time.Second // per-query wall-clock budget
)

// Config tunes a Server.
type Config struct {
	// Workers is the number of evaluation workers. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries admitted but not yet running. 0 means
	// DefaultQueueFactor × Workers; beyond it, queries shed with
	// ErrOverloaded.
	QueueDepth int
	// Session is the option template for pooled sessions. A zero value
	// means duel.DefaultOptions; a partially set value keeps every field
	// the caller set and only has its unset fields defaulted (exactly
	// like duel.NewSession); zero MaxSteps/Timeout get the serving
	// defaults either way, so serve sessions are always bounded.
	Session duel.Options
	// Breaker tunes the per-target circuit breakers.
	Breaker BreakerConfig
	// Retry tunes the serve-layer retry budget (see retry.go). The zero
	// value enables retries with the defaults; set Retry.Disabled to opt
	// out.
	Retry RetryConfig
	// Hedge tunes hedged read-only queries (see hedge.go). Hedging is off
	// unless Hedge.Enabled is set or a query asks with HedgeOn.
	Hedge HedgeConfig
	// Health tunes per-target health tracking with brownout and quarantine
	// (see health.go). The zero value enables tracking with the defaults;
	// set Health.Disabled to opt out.
	Health HealthConfig
	// Batch tunes read-only query coalescing (see batch.go). Off unless
	// Batch.Enabled is set.
	Batch BatchConfig

	// now overrides the serving clock (breaker cooldowns, queue-deadline
	// checks, health probe cadence) in tests.
	now func() time.Time
}

// Stats is a snapshot of a Server's admission and outcome counters.
// Breaker counters aggregate over all registered targets. Snapshots are
// internally consistent: Completed never exceeds Admitted.
type Stats struct {
	Admitted  int64 // queries accepted into the queue
	Completed int64 // admitted queries that ran to completion (ok or error)
	Failed    int64 // completed queries whose evaluation returned an error
	Shed      int64 // refused with ErrOverloaded
	Drained   int64 // refused with ErrDraining, or canceled while queued
	FastFails int64 // refused with ErrCircuitOpen
	Trips     int64 // breaker trips

	DeadlineExpired int64 // shed in queue with ErrDeadlineExceeded
	Retried         int64 // serve-layer retry attempts issued under the budget
	Hedged          int64 // hedge attempts enqueued
	HedgeWins       int64 // hedged pairs whose hedge attempt won
	Quarantined     int64 // target transitions into quarantine
	QuarantineFails int64 // queries refused with ErrQuarantined
	Brownouts       int64 // target transitions into brownout
	BrownoutSheds   int64 // mutating queries shed with ErrBrownout
	Divergences     int64 // divergence penalties applied via PenalizeTarget

	BatchFlushes   int64 // batches flushed to the queue (size or MaxWait)
	BatchedQueries int64 // queries that rode a batch instead of their own job
	StreamQueries  int64 // queries submitted through SubmitStream
	StreamValues   int64 // values delivered through SubmitStream emits
	TargetLocks    int64 // target-lock acquisitions (shared or exclusive), all targets

	QueueNanos int64 // total queue wait of completed attempts, for mean latency
	EvalNanos  int64 // total evaluation time of completed attempts
}

// liveStats is the server's hot counter set. Plain atomics instead of a
// mutex-guarded struct: the two bumps per query (admit, complete) were the
// first serializer the mutex profile named on the read path. A hedged or
// retried query bumps admitted/completed exactly once — extra attempts are
// accounted only in the retried/hedged counters — so Completed can never
// outrun Admitted however many attempts a query spawned.
type liveStats struct {
	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	drained   atomic.Int64

	deadlineExpired atomic.Int64
	retried         atomic.Int64
	hedged          atomic.Int64
	hedgeWins       atomic.Int64

	batchFlushes   atomic.Int64
	batchedQueries atomic.Int64
	streamQueries  atomic.Int64
	streamValues   atomic.Int64

	queueNanos atomic.Int64
	evalNanos  atomic.Int64
}

type serverState int

const (
	stateServing serverState = iota
	stateDraining
)

// Server is the concurrent evaluation service. Create it with New, add
// targets with Register, then call Eval/Exec from any number of
// goroutines. Shut it down exactly once with Shutdown.
type Server struct {
	cfg Config

	// admitMu arbitrates admission against drain: every enqueue holds it
	// for reading across the state check AND the queue send, and Shutdown
	// flips the state holding it for writing — so once Shutdown returns
	// from that flip, no query can slip into the queue behind the drain.
	admitMu sync.RWMutex
	state   serverState
	queue   chan *job

	targetMu sync.RWMutex
	targets  map[string]*targetState

	wg      sync.WaitGroup
	drainCh chan struct{} // closed when Shutdown begins

	// hardCtx cancels in-flight evaluations when the drain deadline
	// passes; every evaluation runs under it.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	outMu sync.Mutex // serializes Exec flushes to shared io.Writers

	stats liveStats
}

// targetState is one registered target: its session pool, breaker, and the
// read/write lock that keeps mutating queries exclusive.
type targetState struct {
	name    string
	factory func() (*duel.Session, error)
	brk     *breaker
	health  *health
	retry   *retryBudget
	lat     latencyEWMA // recent clean-completion latency (hedge delay)

	// rw lets read-only queries share the target; mutating queries take it
	// exclusively (the substrate below the sessions is unsynchronized).
	// Sharded per worker so a read-dominated stream — all surviving traffic
	// under brownout — does not serialize on one reader cache line.
	rw *shardedRW

	// locks counts lock acquisitions (one per shared or exclusive take,
	// batches included), pinning the batcher's fewer-acquisitions guarantee
	// in BenchmarkServeBatchedRead.
	locks atomic.Int64

	// batch coalesces read-only queries against this target; nil when
	// batching is off.
	batch *batcher

	// cls is the lazily built classification session: the batcher parses
	// and read/write-classifies a query before deciding its path, without
	// borrowing a pooled evaluation session. Guarded by clsMu.
	clsMu sync.Mutex
	cls   *duel.Session

	// epoch counts mutating queries. A mutating query bumps it while it
	// still holds the write lock; every session records the epoch its page
	// cache was last valid at and flushes itself lazily when the two
	// disagree (see pooledSession.sync). This replaces the old write-side
	// flushAll walk over every pooled accessor, which both stretched the
	// exclusive section and made registration-order state (the "all" list)
	// part of the hot path.
	epoch atomic.Uint64

	poolMu sync.Mutex
	idle   []*pooledSession
}

// pooledSession is one pooled session plus the target write epoch its page
// cache last observed. Exactly one query uses a pooledSession at a time
// (it is either in the idle pool, held as a worker's affinity session, or
// running), so epoch needs no synchronization of its own.
type pooledSession struct {
	ses   *duel.Session
	epoch uint64
}

// sync brings the session's page cache up to the target's current write
// epoch. Called with the target's lock held (shared or exclusive), so the
// epoch cannot advance concurrently.
func (ps *pooledSession) sync(t *targetState) {
	if e := t.epoch.Load(); ps.epoch != e {
		ps.ses.Mem().Flush()
		ps.epoch = e
	}
}

// affinity is a worker's cached (target, session) pair: the session it used
// most recently, kept out of the shared pool so a steady stream of queries
// against one target runs entirely worker-locally. Only the owning worker
// goroutine touches it.
type affinity struct {
	t  *targetState
	ps *pooledSession
}

// job is one attempt of an admitted query. Jobs are recycled through
// jobPool; the done channel is created once per job object and reused (it
// is always drained by exactly one submitter before the job is returned to
// the pool). ran/mutated are written by the worker before the done send and
// read by the submitter after the done receive — the channel's
// happens-before edge is their synchronization.
type job struct {
	ctx         context.Context
	t           *targetState
	src         string
	emit        func(duel.Result) error
	deadline    time.Time // zero = none; checked again at pickup
	probe       bool      // this attempt is its target's half-open breaker probe
	healthProbe bool      // this attempt is its target's quarantine probe
	hedge       bool      // this attempt is the hedge of a pair
	counted     bool      // this attempt carries the query's Admitted count
	ran         bool      // worker → submitter: the evaluation actually ran
	mutated     bool      // worker → submitter: classified as mutating
	done        chan error

	// members, when non-nil, makes this job a batch container: the worker
	// runs every member under one target-lock acquisition and one warm pass
	// (runBatch) and the container itself reports to no submitter.
	members []*job

	// enqueuedAt stamps admission; the worker derives the queue wait from
	// it and reports the evaluation time back in evalDur. Both ride the
	// done channel's happens-before edge like ran/mutated.
	enqueuedAt time.Time
	queueWait  time.Duration
	evalDur    time.Duration
}

var jobPool = sync.Pool{New: func() any { return &job{done: make(chan error, 1)} }}

// putJob clears the job's references and returns it to the pool.
func putJob(j *job) {
	j.ctx, j.t, j.src, j.emit = nil, nil, "", nil
	j.deadline = time.Time{}
	j.probe, j.healthProbe, j.hedge, j.counted, j.ran, j.mutated = false, false, false, false, false, false
	j.members = nil
	j.enqueuedAt = time.Time{}
	j.queueWait, j.evalDur = 0, 0
	jobPool.Put(j)
}

// New starts a server with cfg's worker pool running. It performs no I/O;
// register targets before submitting queries.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueFactor * cfg.Workers
	}
	// Normalize field-by-field (a wholly zero Session means the defaults;
	// a partial one keeps every field the caller set) — overwriting the
	// whole struct here used to wipe caller-set fields like MaxOutput
	// whenever Backend was left empty.
	cfg.Session = duel.NormalizeOptions(cfg.Session)
	if cfg.Session.Eval.MaxSteps == 0 {
		cfg.Session.Eval.MaxSteps = DefaultMaxSteps
	}
	if cfg.Session.Eval.Timeout == 0 {
		cfg.Session.Eval.Timeout = DefaultTimeout
	}
	if cfg.Hedge.Factor <= 0 {
		cfg.Hedge.Factor = DefaultHedgeFactor
	}
	if cfg.Hedge.MinDelay <= 0 {
		cfg.Hedge.MinDelay = DefaultHedgeMinDelay
	}
	if cfg.Hedge.MaxDelay <= 0 {
		cfg.Hedge.MaxDelay = DefaultHedgeMaxDelay
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.Batch.Enabled {
		if cfg.Batch.BatchSize <= 0 {
			cfg.Batch.BatchSize = DefaultBatchSize
		}
		if cfg.Batch.MaxWait <= 0 {
			cfg.Batch.MaxWait = DefaultBatchMaxWait
		}
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		targets: make(map[string]*targetState),
		drainCh: make(chan struct{}),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Register adds a target under name, serving it with sessions built from
// the server's session options. Registering a name twice replaces the old
// target (its pooled sessions are dropped; in-flight queries finish against
// the old one).
func (s *Server) Register(name string, d dbgif.Debugger) {
	opts := s.cfg.Session
	s.RegisterFactory(name, func() (*duel.Session, error) {
		return duel.NewSession(d, opts)
	})
}

// RegisterFactory adds a target whose pooled sessions come from factory —
// for callers that want a private middleware chain (e.g. a fault injector)
// per session, so one session's Interrupt cannot cross-talk into another's.
func (s *Server) RegisterFactory(name string, factory func() (*duel.Session, error)) {
	t := &targetState{
		name:    name,
		factory: factory,
		brk:     newBreaker(s.cfg.Breaker, s.cfg.now),
		health:  newHealth(s.cfg.Health, s.cfg.now),
		retry:   newRetryBudget(s.cfg.Retry),
		rw:      newShardedRW(s.cfg.Workers),
	}
	if s.cfg.Batch.Enabled {
		t.batch = &batcher{}
	}
	s.targetMu.Lock()
	s.targets[name] = t
	s.targetMu.Unlock()
}

// lookup resolves a registered target.
func (s *Server) lookup(name string) (*targetState, error) {
	s.targetMu.RLock()
	t := s.targets[name]
	s.targetMu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	return t, nil
}

// BreakerState reports the named target's breaker state.
func (s *Server) BreakerState(name string) (BreakerState, error) {
	t, err := s.lookup(name)
	if err != nil {
		return BreakerClosed, err
	}
	st, _, _ := t.brk.snapshot()
	return st, nil
}

// TargetHealth reports the named target's health state.
func (s *Server) TargetHealth(name string) (HealthState, error) {
	t, err := s.lookup(name)
	if err != nil {
		return TargetHealthy, err
	}
	st, _, _, _, _ := t.health.snapshot()
	return st, nil
}

// TargetHealthScore reports the named target's health state together with
// the rate-based score behind it, in [0, 1] (1 = perfectly healthy). The
// fleet layer ranks a replica group's members with it: replicas sort by
// state, and the raw score breaks ties, so traffic prefers the replica the
// health machinery currently trusts most.
func (s *Server) TargetHealthScore(name string) (HealthState, float64, error) {
	t, err := s.lookup(name)
	if err != nil {
		return TargetHealthy, 0, err
	}
	st, _, _, _, _ := t.health.snapshot()
	return st, t.health.score(), nil
}

// ClassifyQuery parses src on the named target's classification session and
// reports whether it would mutate the target — the same read/write
// classification the worker applies before choosing a lock mode, exposed so
// a routing layer can pick a path (read failover vs write fan-out) before
// committing the query to any node. A parse error reports as the error; the
// caller typically routes such a query down the read path and lets the
// serving node surface the error with full accounting.
func (s *Server) ClassifyQuery(target, src string) (mutating bool, err error) {
	t, err := s.lookup(target)
	if err != nil {
		return false, err
	}
	return t.classify(src)
}

// TargetReadOnly reports whether the named target's substrate refuses
// writes (dbgif.ReadOnly through the session middleware chain — a core
// dump, say). Routing layers use it to fast-fail mutating queries against
// replica groups containing an immutable member.
func (s *Server) TargetReadOnly(name string) (bool, error) {
	t, err := s.lookup(name)
	if err != nil {
		return false, err
	}
	return t.readOnly()
}

// PenalizeTarget feeds n synthetic infra-failure samples into the named
// target's health score and counts one divergence against it. This is the
// hook the fleet scrubber uses when cross-replica diffing catches a target
// answering wrongly: wrong answers carry no latency or error signal of
// their own, so integrity findings enter the health machinery here and
// drive the same brownout→quarantine response a faulting target earns.
func (s *Server) PenalizeTarget(name string, n int) error {
	t, err := s.lookup(name)
	if err != nil {
		return err
	}
	t.health.penalize(n)
	return nil
}

// Stats snapshots the server's counters. The snapshot always satisfies
// Completed <= Admitted: every query increments Admitted strictly before it
// can be picked up by a worker, and the loads below read Completed before
// Admitted, so a query that races the snapshot can inflate Admitted but
// never Completed. (The other counters are independent tallies.)
func (s *Server) Stats() Stats {
	var st Stats
	st.Completed = s.stats.completed.Load()
	st.Failed = s.stats.failed.Load()
	st.Shed = s.stats.shed.Load()
	st.Drained = s.stats.drained.Load()
	st.Admitted = s.stats.admitted.Load()
	st.DeadlineExpired = s.stats.deadlineExpired.Load()
	st.Retried = s.stats.retried.Load()
	st.Hedged = s.stats.hedged.Load()
	st.HedgeWins = s.stats.hedgeWins.Load()
	st.BatchFlushes = s.stats.batchFlushes.Load()
	st.BatchedQueries = s.stats.batchedQueries.Load()
	st.StreamQueries = s.stats.streamQueries.Load()
	st.StreamValues = s.stats.streamValues.Load()
	st.QueueNanos = s.stats.queueNanos.Load()
	st.EvalNanos = s.stats.evalNanos.Load()
	s.targetMu.RLock()
	for _, t := range s.targets {
		_, trips, fastFails := t.brk.snapshot()
		st.Trips += trips
		st.FastFails += fastFails
		_, quarantines, qFails, brownouts, bSheds := t.health.snapshot()
		st.Quarantined += quarantines
		st.QuarantineFails += qFails
		st.Brownouts += brownouts
		st.BrownoutSheds += bSheds
		st.Divergences += t.health.divergences.Load()
		st.TargetLocks += t.locks.Load()
	}
	s.targetMu.RUnlock()
	return st
}

// SubmitOptions carries per-query serving policy.
type SubmitOptions struct {
	// Deadline bounds the query end to end, queue time included: if it
	// lapses while the query is queued the query is shed with
	// ErrDeadlineExceeded without touching a session or the target lock,
	// and once running the evaluation executes under a context carrying
	// min(Deadline, ctx's own deadline). Zero means no extra deadline.
	Deadline time.Time
	// Hedge overrides the server's hedging policy for this query.
	Hedge HedgeMode
}

// Eval evaluates src against the named target, collecting all produced
// values. It blocks until the query completes, is shed, or is canceled;
// canceling ctx revokes the query even mid-evaluation.
func (s *Server) Eval(ctx context.Context, target, src string) ([]duel.Result, error) {
	return s.EvalWith(ctx, target, src, SubmitOptions{})
}

// EvalWith is Eval with per-query serving options.
func (s *Server) EvalWith(ctx context.Context, target, src string, opt SubmitOptions) ([]duel.Result, error) {
	var mu sync.Mutex
	var out []duel.Result
	err := s.SubmitContext(ctx, target, src, opt, func(r duel.Result) error {
		mu.Lock()
		out = append(out, r)
		mu.Unlock()
		return nil
	})
	return out, err
}

// Exec evaluates src against the named target and writes one line per value
// to w, with the session's MaxOutput truncation behavior. Output is
// buffered per query and written with a single serialized Write, so any
// number of concurrent queries can share one io.Writer without interleaving
// mid-line.
func (s *Server) Exec(ctx context.Context, target string, w io.Writer, src string) error {
	maxOut := s.cfg.Session.MaxOutput
	var buf bytes.Buffer
	count := 0
	err := s.SubmitContext(ctx, target, src, SubmitOptions{}, func(r duel.Result) error {
		count++
		if maxOut > 0 && count > maxOut {
			fmt.Fprintf(&buf, "... (output truncated at %d lines)\n", maxOut)
			return errTruncated
		}
		_, err := fmt.Fprintln(&buf, r.Line())
		return err
	})
	if errors.Is(err, errTruncated) {
		err = nil
	}
	if buf.Len() > 0 {
		s.outMu.Lock()
		_, werr := w.Write(buf.Bytes())
		s.outMu.Unlock()
		if err == nil {
			err = werr
		}
	}
	return err
}

// errTruncated mirrors the session-level sentinel: truncation is not a
// failure.
var errTruncated = errors.New("serve: output truncated")

// queryOutcome is the submitter-side result of one (or, hedged, a pair of)
// attempts: the error to surface plus what the worker learned about the
// query on the way.
type queryOutcome struct {
	err     error
	ran     bool // some attempt actually evaluated (vs shed/refused)
	mutated bool
	buf     []duel.Result // hedged only: the winning attempt's transcript

	queueWait time.Duration // admission → worker pickup, of the deciding attempt
	evalDur   time.Duration // evaluation wall-clock, of the deciding attempt
}

// SubmitContext runs one query through admission, the queue, and a worker,
// applying the server's resilience policies: the per-query deadline rides
// the job, a transient infra failure may be retried once under the target's
// retry budget, and a read-only query may be hedged. emit is called from
// the worker goroutine (or, hedged, replayed from this one); the
// happens-before edge of the done channel makes its writes visible to the
// caller afterwards. However many attempts this spawns, the query counts as
// at most one admission and at most one completion.
func (s *Server) SubmitContext(ctx context.Context, target, src string, opt SubmitOptions, emit func(duel.Result) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t, err := s.lookup(target)
	if err != nil {
		return err
	}
	deadline := opt.Deadline
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	// Count results delivered to the caller: a retry is only safe while
	// the caller has seen nothing (a re-run would duplicate output).
	emitted := 0
	countEmit := func(r duel.Result) error {
		emitted++
		return emit(r)
	}

	hedge := s.cfg.Hedge.Enabled
	switch opt.Hedge {
	case HedgeOn:
		hedge = true
	case HedgeOff:
		hedge = false
	}

	var out queryOutcome
	switch {
	case hedge:
		out = s.runHedged(ctx, t, src, countEmit, deadline)
	case t.batch != nil:
		// Batching path: read-only queries coalesce per target. A query the
		// batcher does not take (mutating, parse error, batching raced a
		// flush) falls through to its own job unchanged.
		var handled bool
		out, handled = s.submitBatched(ctx, t, src, countEmit, deadline)
		if !handled {
			out = s.runOnce(ctx, t, src, countEmit, deadline, true)
		}
	default:
		out = s.runOnce(ctx, t, src, countEmit, deadline, true)
	}

	// Serve-layer retry: one extra attempt, spent from the target's token
	// bucket, for failures that are the infrastructure's fault and that a
	// fresh attempt can fix — a breaker rejection that never ran, or a
	// memio retry schedule spent to exhaustion on an attempt that ran but
	// delivered nothing. Mutating queries never retry (the failed attempt
	// may have half-applied its writes).
	if s.retryableOutcome(out, emitted) && t.retry.take() {
		if (deadline.IsZero() || s.cfg.now().Before(deadline)) && sleepCtx(ctx, t.retry.backoff) {
			s.stats.retried.Add(1)
			second := s.runOnce(ctx, t, src, countEmit, deadline, false)
			// The retry's outcome stands unless it was refused without
			// running while the original at least ran.
			if second.ran || !out.ran {
				out = second
			}
		}
	}

	if out.ran {
		s.stats.completed.Add(1)
		s.stats.queueNanos.Add(int64(out.queueWait))
		s.stats.evalNanos.Add(int64(out.evalDur))
		t.retry.earn()
		// Output truncation is a clean completion, not a failure: the
		// emit callback stops the evaluation early on purpose.
		if out.err != nil && !errors.Is(out.err, errTruncated) {
			s.stats.failed.Add(1)
		}
	}
	return out.err
}

// retryableOutcome classifies an attempt outcome for the serve-layer retry.
func (s *Server) retryableOutcome(out queryOutcome, emitted int) bool {
	if out.err == nil || out.mutated || emitted > 0 {
		return false
	}
	if !out.ran {
		return errors.Is(out.err, ErrCircuitOpen)
	}
	return memio.IsRetryExhausted(out.err)
}

// runOnce drives a single attempt through the queue and blocks for its
// worker. counted marks the attempt that carries the query's stats counts.
func (s *Server) runOnce(ctx context.Context, t *targetState, src string, emit func(duel.Result) error, deadline time.Time, counted bool) queryOutcome {
	j, err := s.enqueue(ctx, t, src, emit, deadline, counted, false)
	if err != nil {
		return queryOutcome{err: err}
	}
	// Always wait for the worker: the evaluation itself is revocable
	// through ctx, so this wait is bounded by the caller's own deadline,
	// and never returning early keeps emit's writes race-free.
	err = <-j.done
	out := queryOutcome{err: err, ran: j.ran, mutated: j.mutated, queueWait: j.queueWait, evalDur: j.evalDur}
	putJob(j)
	return out
}

// runHedged drives a hedged pair: the primary attempt immediately, a second
// attempt if the primary has not finished after the adaptive hedge delay.
// First finished attempt wins; the loser is canceled through its context
// and — crucially for Shutdown — always awaited before this returns, so a
// drain can never strand half a pair in the queue or double-count it.
//
// Each attempt buffers its results privately and only the winner's
// transcript is replayed to the caller, so a pair can never interleave or
// duplicate output however the race lands.
func (s *Server) runHedged(ctx context.Context, t *targetState, src string, emit func(duel.Result) error, deadline time.Time) queryOutcome {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	var pbuf []duel.Result
	pj, err := s.enqueue(pctx, t, src, func(r duel.Result) error {
		pbuf = append(pbuf, r)
		return nil
	}, deadline, true, false)
	if err != nil {
		return queryOutcome{err: err}
	}

	var (
		hj      *job
		hcancel context.CancelFunc
		hbuf    []duel.Result
		perr    error
		herr    error
	)
	pdone, hedgeFirst := false, false
	timer := time.NewTimer(s.cfg.Hedge.delayFor(t.lat.load()))
	select {
	case perr = <-pj.done:
		pdone = true
		timer.Stop()
	case <-timer.C:
		hctx, cancel := context.WithCancel(ctx)
		defer cancel()
		hcancel = cancel
		hj, err = s.enqueue(hctx, t, src, func(r duel.Result) error {
			hbuf = append(hbuf, r)
			return nil
		}, deadline, false, true)
		if err != nil {
			// The hedge could not be placed (overload, drain, breaker,
			// quarantine): the primary carries on alone.
			hj = nil
		} else {
			s.stats.hedged.Add(1)
		}
	}
	if hj != nil {
		select {
		case perr = <-pj.done:
			pdone = true
			hcancel() // primary finished first: revoke the hedge
		case herr = <-hj.done:
			hedgeFirst = true
			// Revoke the primary only if the hedge actually produced a
			// result. A refused hedge (mutating query, shed at pickup)
			// finishing first must not cancel the one attempt that is
			// legitimately evaluating — for a mutating primary that
			// would abort a write mid-flight. The done receive orders
			// the worker's hj.ran store before this load.
			if hj.ran {
				pcancel()
			}
		}
		// Collect the loser too before returning: the pair must be fully
		// out of the system when SubmitContext returns, or a drain could
		// return while half a pair still runs.
		if pdone {
			herr = <-hj.done
		} else {
			perr = <-pj.done
			pdone = true
		}
	} else if !pdone {
		perr = <-pj.done
	}

	// Pick the winner: the attempt that actually evaluated and finished
	// first. A hedge that was refused per-attempt (mutating query, shed)
	// never wins; if neither ran, the primary's admission error stands.
	var out queryOutcome
	switch {
	case hj != nil && hj.ran && (hedgeFirst || !pj.ran):
		out = queryOutcome{err: herr, ran: true, mutated: hj.mutated, buf: hbuf, queueWait: hj.queueWait, evalDur: hj.evalDur}
		s.stats.hedgeWins.Add(1)
	default:
		out = queryOutcome{err: perr, ran: pj.ran, mutated: pj.mutated, buf: pbuf, queueWait: pj.queueWait, evalDur: pj.evalDur}
	}
	putJob(pj)
	if hj != nil {
		putJob(hj)
	}

	// Replay the winner's transcript. An emit error (Exec truncation)
	// takes over exactly as it would have aborted a live evaluation.
	for _, r := range out.buf {
		if eerr := emit(r); eerr != nil {
			out.err = eerr
			break
		}
	}
	out.buf = nil
	return out
}

// enqueue places one attempt in the queue under admission control. counted
// attempts carry the query's Admitted/Shed/Drained counts; hedge and retry
// attempts pass counted=false so a query never counts twice.
func (s *Server) enqueue(ctx context.Context, t *targetState, src string, emit func(duel.Result) error, deadline time.Time, counted, hedge bool) (*job, error) {
	s.admitMu.RLock()
	if s.state != stateServing {
		s.admitMu.RUnlock()
		if counted {
			s.stats.drained.Add(1)
		}
		return nil, ErrDraining
	}
	healthProbe, err := t.health.admit()
	if err != nil {
		s.admitMu.RUnlock()
		return nil, fmt.Errorf("target %q: %w", t.name, err)
	}
	probe, err := t.brk.admit()
	if err != nil {
		s.admitMu.RUnlock()
		if healthProbe {
			t.health.cancelProbe()
		}
		return nil, fmt.Errorf("target %q: %w", t.name, err)
	}
	j := jobPool.Get().(*job)
	j.ctx, j.t, j.src, j.emit = ctx, t, src, emit
	j.deadline, j.probe, j.healthProbe, j.hedge, j.counted = deadline, probe, healthProbe, hedge, counted
	j.enqueuedAt = s.cfg.now()
	// Count the admission before the enqueue: once the job is in the
	// queue a worker can complete it at any moment, and a Stats snapshot
	// taken in that window used to show Completed > Admitted. A query
	// that turns out to be shed rolls its increment back below.
	if counted {
		s.stats.admitted.Add(1)
	}
	select {
	case s.queue <- j:
		s.admitMu.RUnlock()
		return j, nil
	default:
		s.admitMu.RUnlock()
		if counted {
			s.stats.admitted.Add(-1)
			s.stats.shed.Add(1)
		}
		s.releaseProbes(j)
		putJob(j)
		return nil, ErrOverloaded
	}
}

// releaseProbes returns any probe slots an attempt held without running.
func (s *Server) releaseProbes(j *job) {
	if j.probe {
		j.t.brk.cancelProbe()
	}
	if j.healthProbe {
		j.t.health.cancelProbe()
	}
}

// worker pulls jobs until drain, then finishes whatever is still queued.
// Across jobs it keeps affinity with the last target it served: the session
// stays out of the shared pool, so the common many-queries-one-target
// stream never touches poolMu after warmup.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	var aff affinity
	defer func() {
		if aff.ps != nil {
			aff.t.put(aff.ps)
		}
	}()
	for {
		select {
		case j := <-s.queue:
			s.dispatch(j, &aff, id)
		case <-s.drainCh:
			for {
				select {
				case j := <-s.queue:
					s.dispatch(j, &aff, id)
				default:
					return
				}
			}
		}
	}
}

// dispatch routes one dequeued job. A batch container (members != nil) runs
// every member under runBatch and reports to no submitter — the container's
// done channel must never be sent on: it is recycled with the job (buffered,
// cap 1), and a stale value sitting in it would poison the next query built
// from the pool. Plain jobs report to theirs.
func (s *Server) dispatch(j *job, aff *affinity, id int) {
	if j.members != nil {
		s.runBatch(j, aff, id)
		putJob(j)
		return
	}
	j.done <- s.run(j, aff, id)
}

// acquire hands the worker a session for j's target: its affinity session
// when the target matches, a pooled (or fresh) one otherwise — releasing
// the old affinity session back to its own target's pool first.
func (s *Server) acquire(j *job, aff *affinity) (*pooledSession, error) {
	if aff.ps != nil && aff.t == j.t {
		ps := aff.ps
		aff.ps = nil
		return ps, nil
	}
	if aff.ps != nil {
		aff.t.put(aff.ps)
		aff.ps = nil
	}
	return j.t.get()
}

// retain parks the session as the worker's affinity session for j's target.
func retain(j *job, aff *affinity, ps *pooledSession) {
	aff.t, aff.ps = j.t, ps
}

// errHedgeMutating refuses a hedge attempt whose query turned out to
// mutate the target: its primary is (or was) executing the same writes, and
// a mutating query must run exactly once. Never surfaced to callers —
// runHedged discards the loser's refusal.
var errHedgeMutating = errors.New("serve: hedge attempt refused: query mutates the target")

// run executes one attempt on the calling worker. Completion/failure
// accounting lives with the submitter (SubmitContext), which sees the whole
// query; this function only maintains the shed-class counters for counted
// attempts and reports ran/mutated back through the job.
func (s *Server) run(j *job, aff *affinity, id int) error {
	j.queueWait = s.cfg.now().Sub(j.enqueuedAt)
	if !j.deadline.IsZero() && s.cfg.now().After(j.deadline) {
		// The deadline lapsed while the query sat in the queue: shed it
		// here, before acquiring a session or the target lock — the whole
		// point of carrying the deadline through the queue is that an
		// already-dead query costs the target nothing.
		s.releaseProbes(j)
		if j.counted {
			s.stats.deadlineExpired.Add(1)
		}
		return ErrDeadlineExceeded
	}
	if err := context.Cause(j.ctx); err != nil {
		// The caller gave up while the query was queued.
		s.releaseProbes(j)
		if j.counted {
			if errors.Is(err, context.DeadlineExceeded) {
				s.stats.deadlineExpired.Add(1)
			} else {
				s.stats.drained.Add(1)
			}
		}
		return &core.CanceledError{Cause: err}
	}
	if s.hardCtx.Err() != nil {
		// The drain deadline passed while the query was queued.
		s.releaseProbes(j)
		if j.counted {
			s.stats.drained.Add(1)
		}
		return ErrDraining
	}

	ps, err := s.acquire(j, aff)
	if err != nil {
		s.releaseProbes(j)
		j.ran = true // the query spent its admission; the submitter counts it
		return err
	}
	ses := ps.ses
	n, perr := ses.ParseCached(j.src)
	if perr != nil {
		// A parse error never reached the target; it says nothing about
		// target health, so neither the breaker nor the health score hears
		// about it.
		s.releaseProbes(j)
		retain(j, aff, ps)
		j.ran = true
		return perr
	}

	mutating := MutatesTargetFor(n, ses.D)
	j.mutated = mutating
	if mutating && j.hedge {
		// Classification happens here, the first place the AST is in
		// hand; a mutating hedge is refused before the target lock.
		s.releaseProbes(j)
		retain(j, aff, ps)
		return errHedgeMutating
	}
	if mutating && !j.t.health.allowWrite() {
		// Brownout: the degraded target keeps serving reads under the
		// shared lock, but writes — which take the exclusive lock and
		// amplify its sickness into pool-wide stalls — are shed.
		s.releaseProbes(j)
		retain(j, aff, ps)
		j.t.health.brownoutSheds.Add(1)
		return fmt.Errorf("target %q: %w", j.t.name, ErrBrownout)
	}

	// Compose the caller's context with the query deadline and the
	// server's drain deadline.
	var ctx context.Context
	var cancel context.CancelFunc
	if j.deadline.IsZero() {
		ctx, cancel = context.WithCancel(j.ctx)
	} else {
		ctx, cancel = context.WithDeadline(j.ctx, j.deadline)
	}
	stop := context.AfterFunc(s.hardCtx, cancel)

	if mutating {
		j.t.rw.Lock()
	} else {
		j.t.rw.RLock(id)
	}
	j.t.locks.Add(1)
	// Under the lock the write epoch is stable; catch this session's page
	// cache up to it before touching memory.
	ps.sync(j.t)
	start := time.Now()
	err = ses.EvalNodeContext(ctx, n, j.emit)
	elapsed := time.Since(start)
	j.evalDur = elapsed
	if mutating {
		// Publish the mutation: sessions whose accessors may hold
		// pre-write bytes flush themselves when they next observe the new
		// epoch. This session's own accessor invalidated as it wrote, so
		// it is already current.
		ps.epoch = j.t.epoch.Add(1)
		j.t.rw.Unlock()
	} else {
		j.t.rw.RUnlock(id)
	}
	stop()
	cancel()

	infra := infraFailure(err)
	j.t.brk.record(j.probe, infra)
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		// A canceled attempt (caller gave up, hedge lost the race) says
		// nothing about target health, and its latency is the canceler's
		// choice, not the target's.
		if j.healthProbe {
			j.t.health.cancelProbe()
		}
	} else {
		slow := s.cfg.Health.SlowLatency > 0 && elapsed > s.cfg.Health.SlowLatency
		j.t.health.observe(j.healthProbe, infra, slow)
		if err == nil || errors.Is(err, errTruncated) {
			j.t.lat.observe(elapsed)
		}
	}
	if Pollutes(n) {
		// The query grew session-local state (aliases, DUEL declarations,
		// interned strings); wipe it so pooled sessions stay
		// interchangeable — a follow-up query must not see another
		// caller's x := alias.
		ses.ClearAliases()
	}
	retain(j, aff, ps)
	j.ran = true
	return err
}

// Shutdown drains the server: admissions stop immediately, queries already
// admitted run to completion, and once ctx expires whatever is still
// running is revoked (its callers see *core.CanceledError) and whatever is
// still queued is refused with ErrDraining. It returns nil after a clean
// drain, ctx's error if the deadline forced revocation — in both cases only
// after every worker goroutine has exited, so a Shutdown that returned
// leaks nothing. Subsequent queries fail with ErrDraining; subsequent
// Shutdowns are no-ops that wait the same way.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.admitMu.Lock()
	if s.state == stateServing {
		// Flush pending batches before the drain gate closes: their members
		// are admitted queries whose submitters block on done, and a worker
		// only runs what is in the queue. admitMu held exclusively means no
		// submitBatched can be appending concurrently, and the queue sends
		// land before drainCh closes, so no worker can have drained and
		// exited past them.
		s.targetMu.RLock()
		for _, t := range s.targets {
			if t.batch != nil {
				s.flushBatch(t, true)
			}
		}
		s.targetMu.RUnlock()
		s.state = stateDraining
		close(s.drainCh)
	}
	s.admitMu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		s.hardCancel()
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-workersDone
		return ctx.Err()
	}
}

// get pops an idle pooled session or builds a fresh one. A fresh session's
// accessor holds no pages, so any epoch labels it correctly.
func (t *targetState) get() (*pooledSession, error) {
	t.poolMu.Lock()
	if n := len(t.idle); n > 0 {
		ps := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.poolMu.Unlock()
		return ps, nil
	}
	t.poolMu.Unlock()
	ses, err := t.factory()
	if err != nil {
		return nil, err
	}
	return &pooledSession{ses: ses, epoch: t.epoch.Load()}, nil
}

// put returns a session to the pool.
func (t *targetState) put(ps *pooledSession) {
	t.poolMu.Lock()
	t.idle = append(t.idle, ps)
	t.poolMu.Unlock()
}

// MutatesTarget reports whether the tree can write target memory or run
// target code: assignments, increments/decrements, target calls,
// declarations and interned string literals (both allocate target space).
// Alias definitions (x := e) are session-local state, not target writes.
// Every call counts as mutating here; MutatesTargetFor narrows builtin
// calls when a debugger is available to resolve names against.
func MutatesTarget(n *ast.Node) bool { return mutatesTarget(n, nil) }

// MutatesTargetFor is MutatesTarget with the target's symbol table in hand:
// calls to the evaluator's read-only builtins — frames(), and frame(i) with
// non-mutating arguments — are recognized (exactly when the target does not
// shadow the name with its own variable, mirroring Env.evalCall) and no
// longer force the exclusive target lock. The serving layer classifies with
// this form so plain read queries never serialize writers-style.
//
// A target that declares itself read-only (dbgif.ReadOnly — a core dump,
// say) cannot be mutated by any query: every write-shaped construct fails
// with ErrReadOnlyTarget before touching memory. Classifying everything as
// non-mutating keeps the whole workload on the shared read lock.
func MutatesTargetFor(n *ast.Node, d dbgif.Debugger) bool {
	if d != nil && dbgif.ReadOnly(d) {
		return false
	}
	return mutatesTarget(n, d)
}

func mutatesTarget(n *ast.Node, d dbgif.Debugger) bool {
	if n == nil {
		return false
	}
	switch n.Op {
	case ast.OpAssign, ast.OpAddAssign, ast.OpSubAssign, ast.OpMulAssign,
		ast.OpDivAssign, ast.OpModAssign, ast.OpAndAssign, ast.OpOrAssign,
		ast.OpXorAssign, ast.OpShlAssign, ast.OpShrAssign,
		ast.OpPreInc, ast.OpPreDec, ast.OpPostInc, ast.OpPostDec,
		ast.OpDecl, ast.OpStr:
		return true
	case ast.OpCall:
		if !isReadOnlyBuiltinCall(n, d) {
			return true
		}
		// A builtin call reads debugger state only; its arguments can
		// still mutate (frame(x[0]++)).
		for _, k := range n.Kids[1:] {
			if mutatesTarget(k, d) {
				return true
			}
		}
		return false
	}
	for _, k := range n.Kids {
		if mutatesTarget(k, d) {
			return true
		}
	}
	return false
}

// isReadOnlyBuiltinCall reports whether n is a call that the evaluator
// resolves to a read-only builtin rather than target code: frame(i) and
// frames(), unless the target defines a variable of the same name (the
// evaluator gives the target's own symbols precedence; see Env.evalCall).
func isReadOnlyBuiltinCall(n *ast.Node, d dbgif.Debugger) bool {
	if d == nil || len(n.Kids) == 0 {
		return false
	}
	callee := n.Kids[0]
	if callee.Op != ast.OpName {
		return false
	}
	switch callee.Name {
	case "frame", "frames":
		_, shadowed := d.GetTargetVariable(callee.Name)
		return !shadowed
	}
	return false
}

// Pollutes reports whether the tree leaves session-local state behind that
// would make the session non-interchangeable in the pool.
func Pollutes(n *ast.Node) bool {
	if n == nil {
		return false
	}
	if n.Op == ast.OpDefine || n.Op == ast.OpDecl || n.Op == ast.OpStr {
		return true
	}
	for _, k := range n.Kids {
		if Pollutes(k) {
			return true
		}
	}
	return false
}

// infraFailure classifies an evaluation error for the circuit breaker: true
// for failures that indicate a sick target — transient faults the retry
// budget could not absorb, wedged or failed operations, evaluation
// timeouts — and false for everything that is the query's (or caller's) own
// doing: clean success, parse and type errors, step-limit hits, context
// cancellation, and the paper's garbage-pointer unmapped/short reads, which
// condemn the query's pointer, not the target.
func infraFailure(err error) bool {
	if err == nil {
		return false
	}
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		return false
	}
	var te *core.TimeoutError
	if errors.As(err, &te) {
		return true
	}
	var f *memio.Fault
	if errors.As(err, &f) {
		return f.Kind == memio.KindTransient || f.Kind == memio.KindOther
	}
	return false
}
