package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"duel"
	"duel/internal/core"
	"duel/internal/ctype"
	"duel/internal/dbgif"
	"duel/internal/fakedbg"
	"duel/internal/faultdbg"
	"duel/internal/mem"
)

// buildDebuggee is the differential fixture shared with the compiled
// backend's parity suite: int x[10], a 5-node list at head, a native
// function twice(k) = 2*k.
func buildDebuggee(t *testing.T) *fakedbg.Fake {
	t.Helper()
	f := fakedbg.New(ctype.ILP32, 1<<16)
	a := f.A

	vals := []int64{3, -1, 4, -1, 5, 9, -2, 6, 0, 7}
	x := f.MustVar("x", a.ArrayOf(a.Int, len(vals)))
	for i, v := range vals {
		if err := f.PutTargetBytes(x.Addr+uint64(4*i), mem.EncodeUint(uint64(v), 4)); err != nil {
			t.Fatal(err)
		}
	}

	node := a.NewStruct("node", false)
	if err := a.SetFields(node, []ctype.FieldSpec{
		{Name: "value", Type: a.Int},
		{Name: "next", Type: a.Ptr(node)},
	}); err != nil {
		t.Fatal(err)
	}
	f.Structs["node"] = node

	head := f.MustVar("head", a.Ptr(node))
	list := []int64{2, 7, 1, 7, 8}
	next := uint64(0)
	for i := len(list) - 1; i >= 0; i-- {
		addr, err := f.AllocTargetSpace(node.Size(), node.Align())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.PutTargetBytes(addr, mem.EncodeUint(uint64(list[i]), 4)); err != nil {
			t.Fatal(err)
		}
		if err := f.PutTargetBytes(addr+4, mem.EncodeUint(next, 4)); err != nil {
			t.Fatal(err)
		}
		next = addr
	}
	if err := f.PutTargetBytes(head.Addr, mem.EncodeUint(next, 4)); err != nil {
		t.Fatal(err)
	}

	ft := a.FuncOf(a.Int, []ctype.Type{a.Int}, false)
	f.Vars["twice"] = dbgif.VarInfo{Name: "twice", Type: ft, Addr: 0x9000}
	f.Funcs[0x9000] = func(args []dbgif.Value) (dbgif.Value, error) {
		v := 2 * mem.DecodeInt(args[0].Bytes)
		return dbgif.Value{Type: a.Int, Bytes: mem.EncodeUint(uint64(v), 4)}, nil
	}
	return f
}

// parityQueries is the 39-query suite from the compiled backend's parity
// tests, reused here as the server-path differential: everything a session
// answers directly, the server must answer identically.
var parityQueries = []string{
	"1+2*3",
	"-x[0] + !x[1]",
	"(char)65",
	"sizeof(int)",
	"sizeof(x[0])",
	"x[..10]",
	"x[2..5]",
	"x[..10] >? 4",
	"x[..10] @ (_ < 0)",
	"x[0..]@(_==5)",
	"+/x[..10]",
	"#/(x[..10] != 0)",
	"&&/(x[..10] > -10)",
	"||/(x[..10] > 8)",
	"x[..10] && 1",
	"x[0] || x[1]",
	"if (x[0] > 0) x[1] else x[2]",
	"x[0] > 0 ? x[1] : x[2]",
	"(1..3) + (5,9)",
	"(x[..10] >? 0)[[2]]",
	"(0..9)[[2..4]]",
	"head-->next->value",
	"#/(head-->next)",
	"head-->next->(value ==? 7)",
	"head-->>next->value",
	"x[..10] # i => i",
	"y := x[2..5]",
	"twice(x[2..5])",
	"int z; z = 42; z",
	"x[0] = 11",
	"x[0] += 4",
	"x[0]++",
	"--x[0]",
	"(1..3) => 7",
	"while (x[0] > 0) x[0]--",
	"frames()",
	"(struct node *) 0 == 0",
	"{x[3]}",
	"\"abc\"[1]",
}

// sesExec runs one query in a fresh session (matching the server's pooled,
// alias-free sessions) and returns its Exec output and error string.
func sesExec(t *testing.T, d dbgif.Debugger, src string) (string, string) {
	t.Helper()
	ses := duel.MustNewSession(d)
	var buf bytes.Buffer
	err := ses.Exec(&buf, src)
	return buf.String(), fmt.Sprint(err)
}

// checkNoLeak mirrors internal/core/chan_leak_test.go: run fn, then assert
// the goroutine count settles back near the starting level.
func checkNoLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	runtime.GC()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDifferentialParity holds the server path to session semantics:
// running the 39-query parity suite in order through Server.Exec must
// produce byte-identical output (and identical error text) to fresh
// sessions evaluating the same order directly — mutations included. Then
// the read-only subset is blasted concurrently and every answer must still
// match. Run under -race this is the concurrency audit of the whole stack.
func TestServerDifferentialParity(t *testing.T) {
	checkNoLeak(t, func() {
		ref := buildDebuggee(t)
		srvTarget := buildDebuggee(t)
		srv := New(Config{Workers: 4})
		srv.Register("t", srvTarget)
		ctx := context.Background()

		for _, src := range parityQueries {
			wantOut, wantErr := sesExec(t, ref, src)
			var buf bytes.Buffer
			err := srv.Exec(ctx, "t", &buf, src)
			if buf.String() != wantOut {
				t.Errorf("%q: server output diverges:\n--- session\n%s--- server\n%s", src, wantOut, buf.String())
			}
			if fmt.Sprint(err) != wantErr {
				t.Errorf("%q: server error diverges: %v vs %s", src, err, wantErr)
			}
		}

		// The sequential pass mutated both fixtures identically; now blast
		// the queries that neither write the target nor leave session
		// state, all goroutines sharing the one target under read locks.
		// Classification uses the server's own narrowed, debugger-aware
		// walk, so builtin calls like frames() ride in the read-only set.
		var readOnly []string
		expect := make(map[string]string)
		ses := duel.MustNewSession(ref)
		for _, src := range parityQueries {
			n, err := ses.Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			if MutatesTargetFor(n, ref) || Pollutes(n) {
				continue
			}
			readOnly = append(readOnly, src)
			out, errs := sesExec(t, ref, src)
			expect[src] = out + "\nerr=" + errs
		}
		if len(readOnly) < 20 {
			t.Fatalf("read-only subset suspiciously small: %d queries", len(readOnly))
		}
		var hasFrames bool
		for _, src := range readOnly {
			hasFrames = hasFrames || src == "frames()"
		}
		if !hasFrames {
			t.Error("frames() missing from the read-only subset: builtin-call narrowing regressed")
		}

		// A stats poller races snapshots against the blast: every snapshot
		// must be internally consistent (a completed query was admitted
		// first) — the admission-ordering regression showed up exactly
		// here, as transient Completed > Admitted.
		errCh := make(chan string, 64)
		pollDone := make(chan struct{})
		var pollWg sync.WaitGroup
		pollWg.Add(1)
		go func() {
			defer pollWg.Done()
			for {
				select {
				case <-pollDone:
					return
				default:
				}
				st := srv.Stats()
				if st.Completed > st.Admitted {
					select {
					case errCh <- fmt.Sprintf("inconsistent stats snapshot: Completed %d > Admitted %d", st.Completed, st.Admitted):
					default:
					}
				}
			}
		}()

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 3*len(readOnly); i++ {
					src := readOnly[(g+i)%len(readOnly)]
					var buf bytes.Buffer
					err := srv.Exec(ctx, "t", &buf, src)
					got := buf.String() + "\nerr=" + fmt.Sprint(err)
					if got != expect[src] {
						select {
						case errCh <- fmt.Sprintf("%q diverged concurrently:\n--- want\n%s\n--- got\n%s", src, expect[src], got):
						default:
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(pollDone)
		pollWg.Wait()
		close(errCh)
		for msg := range errCh {
			t.Error(msg)
		}

		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
		st := srv.Stats()
		if st.Admitted == 0 || st.Completed != st.Admitted {
			t.Errorf("stats out of balance: %+v", st)
		}
	})
}

// TestOverloadSheds: with one worker wedged and a one-deep queue occupied,
// the next query must shed immediately with ErrOverloaded — not block, not
// deadlock.
func TestOverloadSheds(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		started := make(chan struct{}, 8)
		release := make(chan struct{})
		ft := f.A.FuncOf(f.A.Int, []ctype.Type{f.A.Int}, false)
		f.Vars["slow"] = dbgif.VarInfo{Name: "slow", Type: ft, Addr: 0x9100}
		f.Funcs[0x9100] = func(args []dbgif.Value) (dbgif.Value, error) {
			started <- struct{}{}
			<-release
			return dbgif.Value{Type: f.A.Int, Bytes: mem.EncodeUint(1, 4)}, nil
		}

		srv := New(Config{Workers: 1, QueueDepth: 1})
		srv.Register("t", f)
		ctx := context.Background()

		wedged := make(chan error, 1)
		go func() {
			_, err := srv.Eval(ctx, "t", "slow(1)")
			wedged <- err
		}()
		<-started // the worker is now inside the target call

		queued := make(chan error, 1)
		go func() {
			_, err := srv.Eval(ctx, "t", "x[0]")
			queued <- err
		}()
		// Wait for the second query to be admitted into the queue.
		for deadline := time.Now().Add(5 * time.Second); srv.Stats().Admitted < 2; {
			if time.Now().After(deadline) {
				t.Fatal("second query never admitted")
			}
			time.Sleep(time.Millisecond)
		}

		if _, err := srv.Eval(ctx, "t", "x[1]"); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overloaded submit: got %v, want ErrOverloaded", err)
		}

		close(release)
		if err := <-wedged; err != nil {
			t.Fatalf("wedged query failed: %v", err)
		}
		if err := <-queued; err != nil {
			t.Fatalf("queued query failed: %v", err)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st := srv.Stats(); st.Shed != 1 {
			t.Errorf("Shed = %d, want 1 (%+v)", st.Shed, st)
		}
	})
}

// fakeClock is the injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerTripsFailsFastRecovers pins the breaker lifecycle against an
// injected sick target and a pinned clock: three straight transient-fault
// queries trip it; while open, queries fail fast without touching the
// target; after the cooldown one probe closes it again.
func TestBreakerTripsFailsFastRecovers(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		inj := faultdbg.New(f, faultdbg.Plan{
			Rates: map[faultdbg.Kind]float64{faultdbg.Transient: 1},
		})
		clk := &fakeClock{t: time.Unix(1_000_000, 0)}
		srv := New(Config{
			Workers: 1,
			Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Second},
			// Serve-layer retries off: this test pins the exact
			// failure count at which the breaker trips, and a retried
			// attempt would feed the breaker twice per query.
			Retry: RetryConfig{Disabled: true},
			now:   clk.now,
		})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(inj, duel.DefaultOptions())
		})
		ctx := context.Background()

		for i := 0; i < 3; i++ {
			if _, err := srv.Eval(ctx, "t", "x[0]"); err == nil {
				t.Fatalf("query %d against the sick target unexpectedly succeeded", i)
			}
			want := BreakerClosed
			if i == 2 {
				want = BreakerOpen
			}
			if st, _ := srv.BreakerState("t"); st != want {
				t.Fatalf("after failure %d: breaker %v, want %v", i+1, st, want)
			}
		}

		// Open: fail fast, and prove the target was not touched.
		opsBefore := inj.Stats().Ops
		if _, err := srv.Eval(ctx, "t", "x[0]"); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-breaker submit: got %v, want ErrCircuitOpen", err)
		}
		if ops := inj.Stats().Ops; ops != opsBefore {
			t.Errorf("fast-fail touched the target: %d ops -> %d", opsBefore, ops)
		}

		// Cooldown elapses, target recovers: the next query is the probe,
		// its success closes the breaker, and traffic flows again.
		clk.advance(2 * time.Second)
		inj.Disarm()
		if _, err := srv.Eval(ctx, "t", "x[0]"); err != nil {
			t.Fatalf("probe after recovery failed: %v", err)
		}
		if st, _ := srv.BreakerState("t"); st != BreakerClosed {
			t.Fatalf("after successful probe: breaker %v, want closed", st)
		}
		if _, err := srv.Eval(ctx, "t", "x[0]"); err != nil {
			t.Fatalf("post-recovery query failed: %v", err)
		}

		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		st := srv.Stats()
		if st.Trips != 1 {
			t.Errorf("Trips = %d, want 1", st.Trips)
		}
		if st.FastFails != 1 {
			t.Errorf("FastFails = %d, want 1", st.FastFails)
		}
	})
}

// TestBreakerReopensOnFailedProbe: a probe that fails must re-open the
// breaker for another full cooldown.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second}, clk.now)
	b.record(false, true)
	b.record(false, true)
	if st, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if _, err := b.admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("admit while open: %v", err)
	}
	clk.advance(1500 * time.Millisecond)
	probe, err := b.admit()
	if err != nil || !probe {
		t.Fatalf("post-cooldown admit: probe=%v err=%v, want probe", probe, err)
	}
	// While the probe is out, others still fail fast.
	if _, err := b.admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("admit during probe: %v", err)
	}
	b.record(true, true) // the probe fails
	if st, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if _, err := b.admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("admit inside second cooldown: %v", err)
	}
	clk.advance(2 * time.Second)
	probe, err = b.admit()
	if err != nil || !probe {
		t.Fatalf("second probe admit: probe=%v err=%v", probe, err)
	}
	b.record(true, false)
	if st, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if _, trips, _ := b.snapshot(); trips != 2 {
		t.Errorf("trips = %d, want 2", trips)
	}
}

// TestShutdownDrainsCleanly: a shutdown with no deadline pressure finishes
// the admitted queries, refuses later ones with ErrDraining, and leaks
// nothing.
func TestShutdownDrainsCleanly(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		srv := New(Config{Workers: 2})
		srv.Register("t", f)
		ctx := context.Background()
		for i := 0; i < 20; i++ {
			if _, err := srv.Eval(ctx, "t", "x[..10]"); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("Shutdown = %v, want nil", err)
		}
		if _, err := srv.Eval(ctx, "t", "x[0]"); !errors.Is(err, ErrDraining) {
			t.Fatalf("post-shutdown submit: got %v, want ErrDraining", err)
		}
		// A second Shutdown is a quiet no-op.
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("second Shutdown = %v", err)
		}
	})
}

// TestShutdownCancelsAtDeadline: a query wedged inside a hanging target
// call must be revoked when the drain deadline passes — the hard cancel
// interrupts the memory chain, the hang releases, the caller sees a
// *core.CanceledError, Shutdown returns the context error, and no
// goroutine survives.
func TestShutdownCancelsAtDeadline(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		inj := faultdbg.New(f, faultdbg.Plan{
			Rates: map[faultdbg.Kind]float64{faultdbg.CallHang: 1},
			Hang:  30 * time.Second,
		})
		srv := New(Config{Workers: 1})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(inj, duel.DefaultOptions())
		})

		wedged := make(chan error, 1)
		go func() {
			_, err := srv.Eval(context.Background(), "t", "twice(1)")
			wedged <- err
		}()
		// Wait until the call is provably hanging.
		for deadline := time.Now().Add(5 * time.Second); ; {
			if inj.Stats().Injected[faultdbg.CallHang] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("target call never wedged")
			}
			time.Sleep(time.Millisecond)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		start := time.Now()
		if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
		}
		if took := time.Since(start); took > 5*time.Second {
			t.Fatalf("forced shutdown took %v; the hang was not revoked", took)
		}
		err := <-wedged
		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("revoked query returned %v, want *core.CanceledError", err)
		}
	})
}

// TestShedWhileDraining: with a wedged worker and the drain already begun,
// new queries are refused immediately with ErrDraining — admission control
// stays responsive all the way down — and the drain still completes at its
// deadline without leaking.
func TestShedWhileDraining(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		inj := faultdbg.New(f, faultdbg.Plan{
			Rates: map[faultdbg.Kind]float64{faultdbg.CallHang: 1},
			Hang:  30 * time.Second,
		})
		srv := New(Config{Workers: 1})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(inj, duel.DefaultOptions())
		})

		wedged := make(chan error, 1)
		go func() {
			_, err := srv.Eval(context.Background(), "t", "twice(1)")
			wedged <- err
		}()
		for deadline := time.Now().Add(5 * time.Second); ; {
			if inj.Stats().Injected[faultdbg.CallHang] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("target call never wedged")
			}
			time.Sleep(time.Millisecond)
		}

		shutdownErr := make(chan error, 1)
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		go func() { shutdownErr <- srv.Shutdown(ctx) }()

		// Admissions must be refused the moment draining begins.
		for deadline := time.Now().Add(5 * time.Second); ; {
			_, err := srv.Eval(context.Background(), "t", "x[0]")
			if errors.Is(err, ErrDraining) {
				break
			}
			if err != nil {
				t.Fatalf("submit while draining: unexpected %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatal("draining refusal never observed")
			}
			time.Sleep(time.Millisecond)
		}

		if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
		}
		<-wedged
	})
}

// TestCallerCancelRevokesQuery: canceling the submitting caller's own
// context revokes a query wedged in a hanging call, without shutting the
// server down.
func TestCallerCancelRevokesQuery(t *testing.T) {
	checkNoLeak(t, func() {
		f := buildDebuggee(t)
		inj := faultdbg.New(f, faultdbg.Plan{
			Rates: map[faultdbg.Kind]float64{faultdbg.CallHang: 1},
			Hang:  30 * time.Second,
		})
		srv := New(Config{Workers: 2})
		srv.RegisterFactory("t", func() (*duel.Session, error) {
			return duel.NewSession(inj, duel.DefaultOptions())
		})

		ctx, cancel := context.WithCancel(context.Background())
		wedged := make(chan error, 1)
		go func() {
			_, err := srv.Eval(ctx, "t", "twice(1)")
			wedged <- err
		}()
		for deadline := time.Now().Add(5 * time.Second); ; {
			if inj.Stats().Injected[faultdbg.CallHang] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("target call never wedged")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		err := <-wedged
		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("canceled query returned %v, want *core.CanceledError", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query does not unwrap to context.Canceled: %v", err)
		}
		// The server is still healthy: the hang poisoned neither the pool
		// nor its sibling sessions' interrupt state.
		inj.Disarm()
		if _, err := srv.Eval(context.Background(), "t", "x[0]"); err != nil {
			t.Fatalf("query after revocation failed: %v", err)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestExecSerializesOutput: any number of concurrent Execs sharing one
// io.Writer must write whole per-query blocks — never interleaved lines.
func TestExecSerializesOutput(t *testing.T) {
	f := buildDebuggee(t)
	srv := New(Config{Workers: 8})
	srv.Register("t", f)
	ctx := context.Background()

	blocks := map[string][]string{}
	queries := []string{"x[..10]", "head-->next->value", "(1..3) + (5,9)"}
	for _, src := range queries {
		out, _ := sesExec(t, f, src)
		lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%q: want a multi-line block, got %q", src, out)
		}
		blocks[lines[0]] = lines
	}

	var mu sync.Mutex
	var shared bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return shared.Write(p)
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := srv.Exec(ctx, "t", w, queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(shared.String(), "\n"), "\n")
	for i := 0; i < len(lines); {
		block, ok := blocks[lines[i]]
		if !ok {
			t.Fatalf("line %d: %q is not the start of any query block — output interleaved", i, lines[i])
		}
		for k, want := range block {
			if i+k >= len(lines) || lines[i+k] != want {
				t.Fatalf("block starting at line %d interleaved: want %q, got %q", i, want, lines[i+k])
			}
		}
		i += len(block)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestUnknownTarget: submitting against an unregistered name is a typed
// error, not a panic or a hang.
func TestUnknownTarget(t *testing.T) {
	srv := New(Config{Workers: 1})
	if _, err := srv.Eval(context.Background(), "nope", "1"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("got %v, want ErrUnknownTarget", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestParseErrorDoesNotTripBreaker: malformed queries are the caller's
// fault; a stream of them must not open the target's breaker.
func TestParseErrorDoesNotTripBreaker(t *testing.T) {
	f := buildDebuggee(t)
	srv := New(Config{Workers: 1, Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second}})
	srv.Register("t", f)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := srv.Eval(ctx, "t", "x[.."); err == nil {
			t.Fatal("malformed query unexpectedly parsed")
		}
	}
	if st, _ := srv.BreakerState("t"); st != BreakerClosed {
		t.Fatalf("breaker = %v after parse errors, want closed", st)
	}
	if _, err := srv.Eval(ctx, "t", "x[0]"); err != nil {
		t.Fatalf("well-formed query failed: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPartialSessionOptionsPreserved: serve.New must normalize a partially
// specified session template field-by-field, exactly like duel.NewSession.
// It used to overwrite the whole struct with DefaultOptions whenever
// Backend was left empty, silently discarding caller-set fields such as
// MaxOutput.
func TestPartialSessionOptionsPreserved(t *testing.T) {
	srv := New(Config{Workers: 1, Session: duel.Options{MaxOutput: 2, ShowSymbolic: true}})
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	got := srv.cfg.Session
	if got.MaxOutput != 2 {
		t.Errorf("MaxOutput = %d, want 2 (caller-set field clobbered)", got.MaxOutput)
	}
	if got.Backend != "push" {
		t.Errorf("Backend = %q, want the push default", got.Backend)
	}
	if !got.ShowSymbolic {
		t.Error("ShowSymbolic = false, want the caller's true")
	}
	if got.Eval.MaxSteps != DefaultMaxSteps || got.Eval.Timeout != DefaultTimeout {
		t.Errorf("serving safety limits not applied: MaxSteps=%d Timeout=%v", got.Eval.MaxSteps, got.Eval.Timeout)
	}
	if got.Eval.MaxOpenRange == 0 {
		t.Error("Eval limits not normalized: MaxOpenRange still 0")
	}

	// A wholly zero template still means the defaults.
	srvZero := New(Config{Workers: 1})
	defer func() {
		if err := srvZero.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if z := srvZero.cfg.Session; z.Backend != "push" || !z.ShowSymbolic {
		t.Errorf("zero Session template = %+v, want DefaultOptions semantics", z)
	}
}

// TestTruncationIsCleanCompletion: a query whose output Exec truncates at
// MaxOutput returns nil AND counts as a clean completion — the truncation
// sentinel stops the evaluation on purpose and used to leak into the
// failure counter.
func TestTruncationIsCleanCompletion(t *testing.T) {
	f := buildDebuggee(t)
	srv := New(Config{Workers: 1, Session: duel.Options{MaxOutput: 2, ShowSymbolic: true}})
	srv.Register("t", f)
	var buf bytes.Buffer
	if err := srv.Exec(context.Background(), "t", &buf, "x[..10]"); err != nil {
		t.Fatalf("truncated Exec returned %v, want nil", err)
	}
	out := buf.String()
	if !strings.Contains(out, "... (output truncated at 2 lines)") {
		t.Fatalf("missing truncation marker in %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("want 2 value lines + marker, got %d lines:\n%s", lines, out)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Completed != 1 || st.Admitted != 1 {
		t.Errorf("Completed/Admitted = %d/%d, want 1/1", st.Completed, st.Admitted)
	}
	if st.Failed != 0 {
		t.Errorf("Failed = %d, want 0: truncation counted as a failure", st.Failed)
	}
}

// TestStatsSnapshotConsistency hammers the admission path while a poller
// takes snapshots: no snapshot may show Completed > Admitted. Before the
// ordering fix, Admitted was bumped after the enqueue (and after the
// admission lock dropped), so a fast worker could complete the query first.
func TestStatsSnapshotConsistency(t *testing.T) {
	f := buildDebuggee(t)
	srv := New(Config{Workers: 2})
	srv.Register("t", f)
	ctx := context.Background()

	stop := make(chan struct{})
	bad := make(chan string, 1)
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := srv.Stats(); st.Completed > st.Admitted {
				select {
				case bad <- fmt.Sprintf("Completed %d > Admitted %d", st.Completed, st.Admitted):
				default:
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := srv.Eval(ctx, "t", "x[0]"); err != nil {
					t.Errorf("eval: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollWg.Wait()
	select {
	case msg := <-bad:
		t.Error(msg)
	default:
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Admitted != 200 || st.Completed != 200 || st.Failed != 0 {
		t.Errorf("final stats %+v, want 200 admitted = completed, 0 failed", st)
	}
}

// TestMutatesTargetNarrowing pins the classification both ways: the
// conservative AST-only walk still flags every call, while the
// debugger-aware walk admits the evaluator's read-only builtins to the
// shared read lock — unless the target shadows the name, or a builtin's
// argument itself mutates.
func TestMutatesTargetNarrowing(t *testing.T) {
	f := buildDebuggee(t)
	ses := duel.MustNewSession(f)
	cases := []struct {
		src       string
		ast, with bool // MutatesTarget / MutatesTargetFor(f)
	}{
		{"x[0]", false, false},
		{"x[0] = 1", true, true},
		{"frames()", true, false},
		{"frame(0)", true, false},
		{"frame(x[0]++)", true, true},
		{"twice(1)", true, true},     // target-defined function: real call
		{"x[frames()]", true, false}, // builtin call in a subexpression
		{"\"abc\"[1]", true, true},   // string literal interns target space
	}
	for _, tc := range cases {
		n, err := ses.Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if got := MutatesTarget(n); got != tc.ast {
			t.Errorf("MutatesTarget(%q) = %v, want %v", tc.src, got, tc.ast)
		}
		if got := MutatesTargetFor(n, f); got != tc.with {
			t.Errorf("MutatesTargetFor(%q) = %v, want %v", tc.src, got, tc.with)
		}
	}

	// A target that shadows "frames" with its own variable keeps the
	// conservative classification: the evaluator would resolve the name
	// to the target symbol, not the builtin.
	shadow := fakedbg.New(ctype.ILP32, 1<<16)
	shadow.MustVar("frames", shadow.A.Int)
	shadowSes := duel.MustNewSession(shadow)
	n, err := shadowSes.Parse("frames()")
	if err != nil {
		t.Fatalf("parse shadowed frames(): %v", err)
	}
	if !MutatesTargetFor(n, shadow) {
		t.Error("MutatesTargetFor(frames()) = false with a shadowing target variable, want true")
	}
}

// TestMutatesTargetReadOnly: against a target that declares itself
// read-only, no query can mutate anything — every write-shaped construct
// fails with the typed sentinel before touching memory — so the classifier
// keeps the entire workload on the shared read lock.
func TestMutatesTargetReadOnly(t *testing.T) {
	f := buildDebuggee(t)
	f.ReadOnly = true
	ses := duel.MustNewSession(f)
	for _, src := range []string{"x[0]", "x[0] = 1", "x[0]++", "int i;", "twice(1)", "\"abc\"[1]"} {
		n, err := ses.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if MutatesTargetFor(n, f) {
			t.Errorf("MutatesTargetFor(%q) = true on a read-only target, want false", src)
		}
	}
}

// TestEpochFlushCoherence: with the page cache ON, a mutating query must
// invalidate what every pooled session has cached — lazily, via the write
// epoch — so concurrent readers never serve pre-write bytes. Several
// write→read rounds through a multi-worker server, with reads fanned wide
// enough that many distinct pooled sessions (with warm caches) answer.
func TestEpochFlushCoherence(t *testing.T) {
	f := buildDebuggee(t)
	opts := duel.DefaultOptions()
	opts.Eval.MemCache = true
	srv := New(Config{Workers: 4, QueueDepth: 32, Session: opts})
	srv.Register("t", f)
	ctx := context.Background()

	for round := 1; round <= 5; round++ {
		// Warm many sessions' caches on the current value.
		var warm sync.WaitGroup
		for g := 0; g < 8; g++ {
			warm.Add(1)
			go func() {
				defer warm.Done()
				if _, err := srv.Eval(ctx, "t", "x[0]"); err != nil {
					t.Errorf("warm read: %v", err)
				}
			}()
		}
		warm.Wait()

		want := fmt.Sprintf("%d", 100+round)
		if _, err := srv.Eval(ctx, "t", fmt.Sprintf("x[0] = %s", want)); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				res, err := srv.Eval(ctx, "t", "x[0]")
				if err != nil {
					t.Errorf("round %d read: %v", round, err)
					return
				}
				if len(res) != 1 || res[0].Text != want {
					t.Errorf("round %d reader %d: got %+v, want x[0] = %s (stale page served)", round, g, res, want)
				}
			}(g)
		}
		wg.Wait()
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
