// Streaming value emission: SubmitStream delivers each value a query
// produces as it is produced, instead of collecting the transcript.
//
// DUEL's defining property is that one query yields a *stream* of
// (symbolic expression, value) pairs — "x[..100] >? 0" can produce a
// hundred hits, and the caller watching a live target wants the first hit
// when it happens, not when the scan ends. Eval's []duel.Result shape
// buries that; SubmitStream surfaces it. Every value is delivered through
// the emit callback with its symbolic expression, formatted text, a
// query-local sequence number and a flat emission timestamp. The callback
// runs on the producing side and its return value propagates into the
// evaluator, so a slow or aborting consumer backpressures (or cancels) the
// evaluation itself — there is no unbounded buffering between producer and
// consumer.
//
// Streaming composes with every serving policy unchanged, because it IS
// SubmitContext with an adapted callback: deadlines, retries, batching and
// health all apply. Hedged attempts keep their private buffers — each
// attempt of a pair writes into its own transcript and only the winner's is
// replayed through the stream — so a stream never interleaves or duplicates
// values however the hedge race lands (the timestamps then mark replay
// time, which is when the values first became deliverable to the caller).
package serve

import (
	"context"
	"fmt"
	"strings"
	"time"

	"duel"
)

// StreamValue is one streamed value of a query.
type StreamValue struct {
	// Seq numbers the value within its query, from 0, in production order.
	Seq int
	// Sym is the symbolic expression that reached the value — DUEL's
	// "x[i].a" provenance — empty when symbolic tracking is off.
	Sym string
	// Text is the value formatted exactly as Eval's Result.Text.
	Text string
	// At stamps when the value was delivered to the stream.
	At time.Time
}

// Line renders the value like duel.Result.Line: "sym = text", or just the
// text when there is no distinct symbolic form.
func (v StreamValue) Line() string {
	if v.Sym == "" || v.Sym == v.Text {
		return v.Text
	}
	return v.Sym + " = " + v.Text
}

// SubmitStream runs one query like SubmitContext but delivers each produced
// value to emit as it is produced. emit's error aborts the evaluation just
// as a Result callback's would; blocking in emit backpressures the
// evaluator. The values seen by a SubmitStream caller are byte-identical
// (Sym and Text) to the Results the same query would have produced through
// Eval.
func (s *Server) SubmitStream(ctx context.Context, target, src string, opt SubmitOptions, emit func(StreamValue) error) error {
	s.stats.streamQueries.Add(1)
	seq := 0
	return s.SubmitContext(ctx, target, src, opt, func(r duel.Result) error {
		v := StreamValue{Seq: seq, Sym: r.Sym, Text: r.Text, At: time.Now()}
		seq++
		s.stats.streamValues.Add(1)
		return emit(v)
	})
}

// TimingCSV renders the snapshot's per-query timing aggregates as a CSV
// header and one row — the shape scrapers and spreadsheets want:
// completed queries, total/mean queue wait and total/mean evaluation time
// in nanoseconds.
func (st Stats) TimingCSV() string {
	var b strings.Builder
	b.WriteString("completed,queue_ns_total,queue_ns_mean,eval_ns_total,eval_ns_mean\n")
	meanQ, meanE := int64(0), int64(0)
	if st.Completed > 0 {
		meanQ = st.QueueNanos / st.Completed
		meanE = st.EvalNanos / st.Completed
	}
	fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n", st.Completed, st.QueueNanos, meanQ, st.EvalNanos, meanE)
	return b.String()
}
