package target

import (
	"fmt"

	"duel/internal/ctype"
	"duel/internal/mem"
)

// This file is the dynamic side of the process: heap allocation, the call
// stack, function calls, and raw typed memory access.

// --- heap ---

// Alloc reserves n zeroed bytes with the given alignment in the heap — the
// target-space allocator behind malloc and behind DUEL's own declarations
// (dbgif.AllocTargetSpace). Exhaustion is an error; the heap never grows.
func (p *Process) Alloc(n, align int) (uint64, error) {
	return p.Heap.Alloc(n, align)
}

// NewCString allocates s in the heap as a NUL-terminated C string and
// returns its address.
func (p *Process) NewCString(s string) (uint64, error) {
	addr, err := p.Alloc(len(s)+1, 1)
	if err != nil {
		return 0, err
	}
	if err := p.Space.Write(addr, append([]byte(s), 0)); err != nil {
		return 0, err
	}
	return addr, nil
}

// --- raw typed access ---

// PeekInt reads one scalar of type t at addr, sign-extending signed types.
// Pointer values are returned as their (unsigned) address bits in an int64.
func (p *Process) PeekInt(addr uint64, t ctype.Type) (int64, error) {
	n, err := scalarSize(t)
	if err != nil {
		return 0, err
	}
	b, err := p.Space.Read(addr, n)
	if err != nil {
		return 0, err
	}
	if ctype.IsSigned(t) {
		return mem.DecodeInt(b), nil
	}
	return int64(mem.DecodeUint(b)), nil
}

// PokeInt stores the low bits of v as one scalar of type t at addr.
func (p *Process) PokeInt(addr uint64, t ctype.Type, v int64) error {
	n, err := scalarSize(t)
	if err != nil {
		return err
	}
	return p.Space.Write(addr, mem.EncodeUint(uint64(v), n))
}

func scalarSize(t ctype.Type) (int, error) {
	if t == nil {
		return 0, fmt.Errorf("target: nil type")
	}
	switch n := t.Size(); n {
	case 1, 2, 4, 8:
		return n, nil
	default:
		return 0, fmt.Errorf("target: %s is not a peekable scalar (%d bytes)", t, n)
	}
}

// --- call stack ---

// PushFrame pushes an activation record for f. Its locals will live in the
// stack segment until the matching PopFrame.
func (p *Process) PushFrame(f *Func) *Frame {
	fr := &Frame{Func: f, Line: lineOf(f), mark: p.Stack.Used()}
	p.frames = append(p.frames, fr)
	return fr
}

func lineOf(f *Func) int {
	if f == nil {
		return 0
	}
	return f.Line
}

// PopFrame pops the innermost frame, releasing (and zeroing) its stack
// storage so stale locals never leak into later frames.
func (p *Process) PopFrame() error {
	if len(p.frames) == 0 {
		return fmt.Errorf("target: PopFrame on an empty stack")
	}
	fr := p.frames[len(p.frames)-1]
	p.frames = p.frames[:len(p.frames)-1]
	return p.Stack.Release(fr.mark)
}

// NumFrames reports the number of active frames.
func (p *Process) NumFrames() int { return len(p.frames) }

// FrameAt returns the frame at the given level, 0 being the innermost —
// gdb's frame numbering.
func (p *Process) FrameAt(level int) (*Frame, bool) {
	if level < 0 || level >= len(p.frames) {
		return nil, false
	}
	return p.frames[len(p.frames)-1-level], true
}

// AddLocal allocates zeroed stack storage for a local (or parameter) of
// type t in fr and records it. A name re-declared in the same frame shadows
// the earlier declaration, as in nested C blocks.
func (p *Process) AddLocal(fr *Frame, name string, t ctype.Type) (Var, error) {
	if fr == nil {
		return Var{}, fmt.Errorf("target: AddLocal with nil frame")
	}
	if t == nil {
		return Var{}, fmt.Errorf("target: local %q has nil type", name)
	}
	addr, err := p.Stack.Alloc(t.Size(), t.Align())
	if err != nil {
		return Var{}, fmt.Errorf("target: local %q: stack overflow: %w", name, err)
	}
	v := Var{Name: name, Type: t, Addr: addr}
	fr.Locals = append(fr.Locals, v)
	return v, nil
}

// --- calls ---

// CallFunc invokes f with the given argument datums and returns its result
// datum (a void datum for void functions). Native functions run directly;
// interpreted bodies are routed through the CallBody hook, which owns the
// frame discipline (push, bind parameters, execute, pop).
func (p *Process) CallFunc(f *Func, args []Datum) (Datum, error) {
	if f == nil {
		return Datum{}, fmt.Errorf("target: call of nil function")
	}
	if f.Type != nil {
		if len(args) < len(f.Type.Params) {
			return Datum{}, fmt.Errorf("target: %q called with %d argument(s), wants %d", f.Name, len(args), len(f.Type.Params))
		}
		if !f.Type.Variadic && len(args) > len(f.Type.Params) {
			return Datum{}, fmt.Errorf("target: %q called with %d argument(s), wants %d", f.Name, len(args), len(f.Type.Params))
		}
	}
	if f.Native != nil {
		return f.Native(p, args)
	}
	if p.CallBody == nil {
		return Datum{}, fmt.Errorf("target: function %q has no native implementation and no interpreter is attached", f.Name)
	}
	return p.CallBody(p, f, args)
}

// Call invokes the named function.
func (p *Process) Call(name string, args []Datum) (Datum, error) {
	f, ok := p.Function(name)
	if !ok {
		return Datum{}, fmt.Errorf("target: no function %q", name)
	}
	return p.CallFunc(f, args)
}
