package target

import (
	"fmt"

	"duel/internal/ctype"
)

// This file is the process's debug symbol table: the globals, functions and
// type tags a debugger would read from the executable's symbol and type
// sections. All name lists are returned in declaration order, which is the
// order the micro-C front end registered them — deterministic, like a
// compiler's symbol table.

// --- globals ---

// DefineGlobal allocates zeroed storage for a global of type t in the data
// segment and registers it.
func (p *Process) DefineGlobal(name string, t ctype.Type) (Var, error) {
	if name == "" {
		return Var{}, fmt.Errorf("target: global with empty name")
	}
	if t == nil {
		return Var{}, fmt.Errorf("target: global %q has nil type", name)
	}
	if _, exists := p.globals[name]; exists {
		return Var{}, fmt.Errorf("target: global %q redefined", name)
	}
	addr, err := p.Data.Alloc(t.Size(), t.Align())
	if err != nil {
		return Var{}, fmt.Errorf("target: global %q: %w", name, err)
	}
	v := Var{Name: name, Type: t, Addr: addr}
	p.globals[name] = v
	p.globalNames = append(p.globalNames, name)
	return v, nil
}

// Global resolves a global variable by name.
func (p *Process) Global(name string) (Var, bool) {
	v, ok := p.globals[name]
	return v, ok
}

// Globals lists the global names in declaration order.
func (p *Process) Globals() []string { return copyNames(p.globalNames) }

// --- functions ---

// DefineFunc assigns f an entry address in the text segment and registers
// it. The address is what function-pointer values hold and what
// FunctionAt resolves.
func (p *Process) DefineFunc(f *Func) error {
	if f == nil || f.Name == "" {
		return fmt.Errorf("target: function with empty name")
	}
	if f.Type == nil {
		return fmt.Errorf("target: function %q has nil type", f.Name)
	}
	if _, exists := p.funcs[f.Name]; exists {
		return fmt.Errorf("target: function %q redefined", f.Name)
	}
	if f.Addr == 0 {
		// Every function occupies one aligned slot so entry addresses
		// are distinct and never alias another function's entry.
		addr, err := p.Text.Alloc(funcSlot, funcSlot)
		if err != nil {
			return fmt.Errorf("target: function %q: text segment exhausted: %w", f.Name, err)
		}
		f.Addr = addr
	}
	if _, exists := p.funcAddrs[f.Addr]; exists {
		return fmt.Errorf("target: functions share entry address 0x%x", f.Addr)
	}
	p.funcs[f.Name] = f
	p.funcAddrs[f.Addr] = f
	p.funcNames = append(p.funcNames, f.Name)
	return nil
}

// funcSlot is the size reserved per function entry in the text segment.
const funcSlot = 16

// Function resolves a function by name.
func (p *Process) Function(name string) (*Func, bool) {
	f, ok := p.funcs[name]
	return f, ok
}

// FunctionAt resolves a function by its entry address.
func (p *Process) FunctionAt(addr uint64) (*Func, bool) {
	f, ok := p.funcAddrs[addr]
	return f, ok
}

// Functions lists the function names in definition order.
func (p *Process) Functions() []string { return copyNames(p.funcNames) }

// --- typedefs ---

// DefineTypedef registers a typedef of t under name.
func (p *Process) DefineTypedef(name string, t ctype.Type) (*ctype.Typedef, error) {
	if name == "" {
		return nil, fmt.Errorf("target: typedef with empty name")
	}
	if t == nil {
		return nil, fmt.Errorf("target: typedef %q of nil type", name)
	}
	if prev, exists := p.typedefs[name]; exists {
		// C allows exact re-declaration of a typedef.
		if ctype.Equal(prev.Under, t) {
			return prev, nil
		}
		return nil, fmt.Errorf("target: typedef %q redefined with a different type", name)
	}
	td := &ctype.Typedef{Name: name, Under: t}
	p.typedefs[name] = td
	p.typedefNames = append(p.typedefNames, name)
	return td, nil
}

// Typedef resolves a typedef by name.
func (p *Process) Typedef(name string) (*ctype.Typedef, bool) {
	td, ok := p.typedefs[name]
	return td, ok
}

// TypedefNames lists the typedef names in declaration order.
func (p *Process) TypedefNames() []string { return copyNames(p.typedefNames) }

// --- struct and union tags ---

// DeclareStruct returns the struct or union type with the given tag,
// creating an incomplete shell if the tag is new — the forward-declaration
// step that makes self-referential types ("struct node { ... *next; }")
// possible. Complete the shell with Arch.SetFields.
func (p *Process) DeclareStruct(tag string, union bool) *ctype.Struct {
	if s, ok := p.Struct(tag, union); ok {
		return s
	}
	s := p.Arch.NewStruct(tag, union)
	if union {
		p.unions[tag] = s
		p.unionTags = append(p.unionTags, tag)
	} else {
		p.structs[tag] = s
		p.structTags = append(p.structTags, tag)
	}
	return s
}

// Struct resolves a struct (union=false) or union (union=true) tag.
func (p *Process) Struct(tag string, union bool) (*ctype.Struct, bool) {
	if union {
		s, ok := p.unions[tag]
		return s, ok
	}
	s, ok := p.structs[tag]
	return s, ok
}

// StructTags lists the struct (union=false) or union (union=true) tags in
// declaration order.
func (p *Process) StructTags(union bool) []string {
	if union {
		return copyNames(p.unionTags)
	}
	return copyNames(p.structTags)
}

// --- enums ---

// DefineEnum registers an enum type: its tag (when named) and all of its
// enumeration constants, which live in one flat namespace as in C.
func (p *Process) DefineEnum(en *ctype.Enum) error {
	if en == nil {
		return fmt.Errorf("target: nil enum")
	}
	if en.Tag != "" {
		if _, exists := p.enums[en.Tag]; exists {
			return fmt.Errorf("target: enum %q redefined", en.Tag)
		}
	}
	for _, c := range en.Consts {
		if prev, exists := p.consts[c.Name]; exists && prev != en {
			return fmt.Errorf("target: enumeration constant %q redefined", c.Name)
		}
	}
	if en.Tag != "" {
		p.enums[en.Tag] = en
		p.enumTags = append(p.enumTags, en.Tag)
	}
	for _, c := range en.Consts {
		p.consts[c.Name] = en
	}
	return nil
}

// Enum resolves an enum tag.
func (p *Process) Enum(tag string) (*ctype.Enum, bool) {
	e, ok := p.enums[tag]
	return e, ok
}

// EnumTags lists the enum tags in declaration order.
func (p *Process) EnumTags() []string { return copyNames(p.enumTags) }

// EnumConst resolves an enumeration constant by name, returning its enum
// type and value.
func (p *Process) EnumConst(name string) (ctype.Type, int64, bool) {
	en, ok := p.consts[name]
	if !ok {
		return nil, 0, false
	}
	v, ok := en.Lookup(name)
	if !ok {
		return nil, 0, false
	}
	return en, v, true
}

func copyNames(names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}
