// Package target simulates the debuggee process beneath the mini-debugger:
// the machine-dependent "nub" under a portable debugger, in the sense of
// Ramsey's machine-independent-debugger design. Where the original DUEL
// hooked gdb onto a live C process, this package provides the equivalent
// substrate in-process: a sparse, fault-checked address space
// (internal/mem) laid out under real C rules (internal/ctype), typed
// symbol tables (globals, functions, typedefs, struct/union/enum tags),
// a call stack of typed frames, a bump-allocated heap, and callable
// functions — native Go implementations or micro-C bodies run by an
// attached interpreter through the CallBody hook.
//
// A Process is everything internal/debugger needs to implement the paper's
// narrow two-way interface (internal/dbgif): it answers symbol lookups,
// serves memory reads and writes with "Illegal memory reference" faults at
// unmapped addresses, allocates target space for DUEL declarations, and
// calls target functions with typed argument/result datums.
package target

import (
	"fmt"
	"io"

	"duel/internal/ctype"
	"duel/internal/mem"
)

// Config sizes a fresh process image. The zero value of any field selects
// the corresponding DefaultConfig value, so Config{} is usable as-is.
type Config struct {
	// Model is the C data model (ctype.ILP32 or ctype.LP64).
	Model ctype.Model
	// TextSize is the size of the (read-only) text segment, which only
	// provides distinct entry addresses for functions.
	TextSize int
	// DataSize is the size of the data segment holding globals.
	DataSize int
	// HeapSize is the size of the heap segment behind Alloc/malloc.
	HeapSize int
	// StackSize is the size of the stack segment holding frame locals.
	StackSize int
}

// DefaultConfig is a medium-sized ILP32 image, enough for every scenario
// and example in this repository.
var DefaultConfig = Config{
	Model:     ctype.ILP32,
	TextSize:  1 << 16,
	DataSize:  1 << 20,
	HeapSize:  1 << 20,
	StackSize: 1 << 18,
}

// Datum is a typed value in target representation: the C type plus the raw
// little-endian bytes of one object of that type. It is the unit crossing
// the process boundary in function calls, mirroring dbgif.Value on the
// engine side.
type Datum struct {
	Type  ctype.Type
	Bytes []byte
}

// Var is one named, typed storage location: a global or a frame local.
type Var struct {
	Name string
	Type ctype.Type
	Addr uint64
}

// Func is one target function. Exactly one of Native and Body is normally
// set: Native functions are implemented in Go (the tiny libc), Body carries
// an interpreter-owned definition (a *cparse.FuncDef) executed through the
// process's CallBody hook.
type Func struct {
	Name string
	Type *ctype.Func
	// Addr is the function's entry address in the text segment; it is
	// assigned by DefineFunc.
	Addr uint64
	// Params names the parameters, for frame construction and display.
	Params []string
	// Body is the interpreter's representation of the function body.
	Body any
	// Line is the source line of the definition.
	Line int
	// Native, when set, implements the function in Go.
	Native func(p *Process, args []Datum) (Datum, error)
}

// Frame is one activation record on the simulated call stack.
type Frame struct {
	Func *Func
	// Locals lists parameters and block locals in declaration order;
	// later declarations of the same name shadow earlier ones.
	Locals []Var
	// Line is the source line currently executing in this frame. It
	// starts at the function's definition line and is advanced by the
	// interpreter statement by statement.
	Line int

	// mark is the stack-segment watermark to release on pop.
	mark int
}

// Local resolves name among the frame's locals, innermost declaration
// first, so re-declarations in nested blocks shadow as in C.
func (fr *Frame) Local(name string) (Var, bool) {
	for i := len(fr.Locals) - 1; i >= 0; i-- {
		if fr.Locals[i].Name == name {
			return fr.Locals[i], true
		}
	}
	return Var{}, false
}

// Process is a simulated target process: address space, symbol tables,
// heap, call stack, and callable functions.
type Process struct {
	// Arch fixes the data model; all types in the process come from it.
	Arch *ctype.Arch
	// Space is the process's sparse address space.
	Space *mem.Space
	// Text, Data, Heap and Stack are the four segments of Space.
	Text  *mem.Segment
	Data  *mem.Segment
	Heap  *mem.Segment
	Stack *mem.Segment
	// Stdout receives the output of native functions such as printf.
	Stdout io.Writer
	// CallBody, when set by an interpreter, runs a non-native function's
	// Body. CallFunc routes every call with a nil Native through it.
	CallBody func(p *Process, f *Func, args []Datum) (Datum, error)

	globals     map[string]Var
	globalNames []string

	funcs     map[string]*Func
	funcAddrs map[uint64]*Func
	funcNames []string

	typedefs     map[string]*ctype.Typedef
	typedefNames []string

	structs    map[string]*ctype.Struct
	structTags []string
	unions     map[string]*ctype.Struct
	unionTags  []string

	enums    map[string]*ctype.Enum
	enumTags []string
	// consts maps enumeration-constant names to their enum type.
	consts map[string]*ctype.Enum

	frames []*Frame
}

// segment bases, in the style of the DECStation's ultrix memory map the
// paper ran on: text at 0x400000, data at 0x10000000, heap and stack
// following with a guard gap between them so an off-by-one walk off a
// segment's end faults instead of silently crossing into the next segment.
// Everything below the text base — including NULL and the paper's example
// garbage pointer 0x16820 — is unmapped and raises "Illegal memory
// reference" faults.
const (
	textBase   = 0x400000
	dataBase   = 0x10000000
	segmentGap = 0x1000
)

// NewProcess builds an empty process image for the given configuration.
func NewProcess(cfg Config) (*Process, error) {
	def := DefaultConfig
	if cfg.TextSize == 0 {
		cfg.TextSize = def.TextSize
	}
	if cfg.DataSize == 0 {
		cfg.DataSize = def.DataSize
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = def.HeapSize
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = def.StackSize
	}
	if cfg.Model != ctype.ILP32 && cfg.Model != ctype.LP64 {
		return nil, fmt.Errorf("target: unknown data model %v", cfg.Model)
	}
	for _, s := range []struct {
		name string
		size int
	}{{"text", cfg.TextSize}, {"data", cfg.DataSize}, {"heap", cfg.HeapSize}, {"stack", cfg.StackSize}} {
		if s.size < 0 {
			return nil, fmt.Errorf("target: negative %s segment size %d", s.name, s.size)
		}
	}
	p := &Process{
		Arch:      ctype.New(cfg.Model),
		Space:     mem.NewSpace(),
		Stdout:    io.Discard,
		globals:   map[string]Var{},
		funcs:     map[string]*Func{},
		funcAddrs: map[uint64]*Func{},
		typedefs:  map[string]*ctype.Typedef{},
		structs:   map[string]*ctype.Struct{},
		unions:    map[string]*ctype.Struct{},
		enums:     map[string]*ctype.Enum{},
		consts:    map[string]*ctype.Enum{},
	}
	base := uint64(textBase)
	add := func(name string, size int, writable bool) (*mem.Segment, error) {
		seg, err := p.Space.AddSegment(name, base, size, writable)
		if err != nil {
			return nil, err
		}
		base = alignUp(seg.End()+segmentGap, segmentGap)
		return seg, nil
	}
	var err error
	if p.Text, err = add("text", cfg.TextSize, false); err != nil {
		return nil, err
	}
	if p.Data, err = add("data", cfg.DataSize, true); err != nil {
		return nil, err
	}
	if p.Heap, err = add("heap", cfg.HeapSize, true); err != nil {
		return nil, err
	}
	if p.Stack, err = add("stack", cfg.StackSize, true); err != nil {
		return nil, err
	}
	if cfg.Model == ctype.ILP32 && p.Stack.End() > 1<<32 {
		return nil, fmt.Errorf("target: image of %d bytes does not fit the ILP32 address space", p.Stack.End())
	}
	return p, nil
}

// MustNewProcess is NewProcess for tests and examples.
func MustNewProcess(cfg Config) *Process {
	p, err := NewProcess(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func alignUp(n, a uint64) uint64 { return (n + a - 1) / a * a }
