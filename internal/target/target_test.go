package target

import (
	"errors"
	"strings"
	"testing"

	"duel/internal/ctype"
	"duel/internal/mem"
)

// TestProcessLayout checks the overall image: segments in order with guard
// gaps, NULL and the paper's example garbage pointer unmapped.
func TestProcessLayout(t *testing.T) {
	p := MustNewProcess(DefaultConfig)
	segs := []*mem.Segment{p.Text, p.Data, p.Heap, p.Stack}
	for i, seg := range segs {
		if seg == nil {
			t.Fatalf("segment %d is nil", i)
		}
		if i > 0 && seg.Base < segs[i-1].End()+segmentGap {
			t.Errorf("segment %q at 0x%x lacks a guard gap after %q ending 0x%x",
				seg.Name, seg.Base, segs[i-1].Name, segs[i-1].End())
		}
	}
	for _, addr := range []uint64{0, 0x30, 0x16820} {
		if p.Space.Valid(addr, 1) {
			t.Errorf("address 0x%x should be unmapped", addr)
		}
	}
	if p.Stack.End() > 1<<32 {
		t.Errorf("ILP32 image ends at 0x%x, beyond the 32-bit address space", p.Stack.End())
	}

	if _, err := NewProcess(Config{Model: ctype.Model(99)}); err == nil {
		t.Error("NewProcess accepted an unknown data model")
	}
	if _, err := NewProcess(Config{Model: ctype.ILP32, HeapSize: -1}); err == nil {
		t.Error("NewProcess accepted a negative segment size")
	}
	if _, err := NewProcess(Config{Model: ctype.ILP32, DataSize: 1 << 31, HeapSize: 1 << 31}); err == nil {
		t.Error("NewProcess accepted an image overflowing the ILP32 address space")
	}
}

// TestGlobalLayout checks that globals land in the data segment under real
// C layout rules: struct padding, array sizing, and per-type alignment.
func TestGlobalLayout(t *testing.T) {
	p := MustNewProcess(DefaultConfig)
	a := p.Arch

	// One char first so the next global needs alignment padding.
	if _, err := p.DefineGlobal("c", a.Char); err != nil {
		t.Fatal(err)
	}

	// struct { char tag; int n; short s; } — classic padding: tag at 0,
	// 3 bytes of padding, n at 4, s at 8, tail-padded to 12.
	st, err := a.StructOf("padded",
		ctype.FieldSpec{Name: "tag", Type: a.Char},
		ctype.FieldSpec{Name: "n", Type: a.Int},
		ctype.FieldSpec{Name: "s", Type: a.Short},
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 12 || st.Align() != 4 {
		t.Fatalf("struct padded: size %d align %d, want 12 and 4", st.Size(), st.Align())
	}
	sv, err := p.DefineGlobal("sv", st)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Addr%4 != 0 {
		t.Errorf("struct global at 0x%x is not 4-aligned", sv.Addr)
	}

	av, err := p.DefineGlobal("arr", a.ArrayOf(a.Int, 10))
	if err != nil {
		t.Fatal(err)
	}
	if av.Type.Size() != 40 {
		t.Errorf("int[10] sized %d, want 40", av.Type.Size())
	}
	if av.Addr < sv.Addr+uint64(st.Size()) {
		t.Errorf("arr at 0x%x overlaps sv [0x%x,0x%x)", av.Addr, sv.Addr, sv.Addr+uint64(st.Size()))
	}

	for _, v := range []Var{sv, av} {
		if v.Addr < p.Data.Base || v.Addr+uint64(v.Type.Size()) > p.Data.End() {
			t.Errorf("global %q at 0x%x is outside the data segment", v.Name, v.Addr)
		}
	}

	// Fresh storage reads as zero.
	b, err := p.Space.Read(av.Addr, av.Type.Size())
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range b {
		if x != 0 {
			t.Fatalf("byte %d of fresh global is 0x%x, want 0", i, x)
		}
	}

	if got := p.Globals(); len(got) != 3 || got[0] != "c" || got[1] != "sv" || got[2] != "arr" {
		t.Errorf("Globals() = %v, want declaration order [c sv arr]", got)
	}
	if _, err := p.DefineGlobal("c", a.Int); err == nil {
		t.Error("redefining a global should fail")
	}
}

// TestFrames checks push/pop with locals: declaration order, shadowing,
// innermost-first FrameAt, and that popped stack storage is zeroed before
// reuse.
func TestFrames(t *testing.T) {
	p := MustNewProcess(DefaultConfig)
	a := p.Arch
	f := &Func{Name: "f", Type: a.FuncOf(a.Int, nil, false), Line: 7}
	if err := p.DefineFunc(f); err != nil {
		t.Fatal(err)
	}

	fr := p.PushFrame(f)
	if fr.Line != 7 {
		t.Errorf("fresh frame at line %d, want the definition line 7", fr.Line)
	}
	x1, err := p.AddLocal(fr, "x", a.Int)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddLocal(fr, "y", a.Char); err != nil {
		t.Fatal(err)
	}
	x2, err := p.AddLocal(fr, "x", a.Long) // inner-block shadow
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fr.Local("x"); !ok || got.Addr != x2.Addr {
		t.Errorf("Local(x) = %+v, want the shadowing declaration at 0x%x", got, x2.Addr)
	}
	if len(fr.Locals) != 3 || fr.Locals[0].Addr != x1.Addr {
		t.Errorf("Locals = %+v, want 3 entries in declaration order", fr.Locals)
	}

	if err := p.PokeInt(x1.Addr, a.Int, -42); err != nil {
		t.Fatal(err)
	}
	if v, err := p.PeekInt(x1.Addr, a.Int); err != nil || v != -42 {
		t.Errorf("PeekInt = %d, %v; want -42 (sign-extended)", v, err)
	}

	inner := p.PushFrame(f)
	if got, ok := p.FrameAt(0); !ok || got != inner {
		t.Error("FrameAt(0) is not the innermost frame")
	}
	if got, ok := p.FrameAt(1); !ok || got != fr {
		t.Error("FrameAt(1) is not the caller")
	}
	if p.NumFrames() != 2 {
		t.Errorf("NumFrames = %d, want 2", p.NumFrames())
	}
	if err := p.PopFrame(); err != nil {
		t.Fatal(err)
	}
	if err := p.PopFrame(); err != nil {
		t.Fatal(err)
	}

	// The popped storage must come back zeroed.
	fr2 := p.PushFrame(f)
	z, err := p.AddLocal(fr2, "z", a.Int)
	if err != nil {
		t.Fatal(err)
	}
	if z.Addr != x1.Addr {
		t.Errorf("reused stack slot at 0x%x, want 0x%x", z.Addr, x1.Addr)
	}
	if v, err := p.PeekInt(z.Addr, a.Int); err != nil || v != 0 {
		t.Errorf("reused stack slot reads %d, %v; want zeroed storage", v, err)
	}
	if err := p.PopFrame(); err != nil {
		t.Fatal(err)
	}
	if err := p.PopFrame(); err == nil {
		t.Error("PopFrame on an empty stack should fail")
	}
}

// TestAllocFaults checks heap exhaustion and faults at segment boundaries.
func TestAllocFaults(t *testing.T) {
	p := MustNewProcess(Config{Model: ctype.ILP32, HeapSize: 64})
	if _, err := p.Alloc(48, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(32, 8); err == nil {
		t.Error("Alloc beyond the heap size should fail")
	}
	// The remaining 16 bytes are still allocatable.
	addr, err := p.Alloc(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if addr+16 != p.Heap.End() {
		t.Fatalf("last allocation [0x%x,0x%x) does not end the heap 0x%x", addr, addr+16, p.Heap.End())
	}

	// One byte past the segment end faults; reads straddling the boundary
	// fault rather than silently truncating.
	if _, err := p.Space.Read(p.Heap.End(), 1); err == nil {
		t.Error("read past the heap end should fault")
	}
	var f *mem.Fault
	if _, err := p.Space.Read(p.Heap.End()-2, 4); !errors.As(err, &f) {
		t.Errorf("straddling read got %v, want a *mem.Fault", err)
	}
	if err := p.Space.Write(p.Heap.End(), []byte{1}); err == nil {
		t.Error("write past the heap end should fault")
	}
	// The text segment is mapped but read-only.
	if err := p.Space.Write(p.Text.Base, []byte{1}); err == nil {
		t.Error("write into the text segment should fault")
	}

	p = MustNewProcess(DefaultConfig)
	s, err := p.NewCString("hi")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Space.ReadCString(s, 16); !ok || got != "hi" {
		t.Errorf("ReadCString = %q, %v; want \"hi\"", got, ok)
	}
}

// TestCallFunc round-trips typed values through Datum for native functions,
// checks argument-count enforcement, and exercises the CallBody hook.
func TestCallFunc(t *testing.T) {
	p := MustNewProcess(DefaultConfig)
	a := p.Arch

	add := &Func{
		Name:   "add",
		Type:   a.FuncOf(a.Int, []ctype.Type{a.Int, a.Int}, false),
		Params: []string{"x", "y"},
		Native: func(p *Process, args []Datum) (Datum, error) {
			sum := mem.DecodeInt(args[0].Bytes) + mem.DecodeInt(args[1].Bytes)
			return Datum{Type: a.Int, Bytes: mem.EncodeUint(uint64(sum), a.Int.Size())}, nil
		},
	}
	if err := p.DefineFunc(add); err != nil {
		t.Fatal(err)
	}
	if got, ok := p.FunctionAt(add.Addr); !ok || got != add {
		t.Errorf("FunctionAt(0x%x) = %v, want add", add.Addr, got)
	}

	arg := func(v int64) Datum {
		return Datum{Type: a.Int, Bytes: mem.EncodeUint(uint64(v), a.Int.Size())}
	}
	res, err := p.Call("add", []Datum{arg(40), arg(-38)})
	if err != nil {
		t.Fatal(err)
	}
	if !ctype.Equal(res.Type, a.Int) || mem.DecodeInt(res.Bytes) != 2 {
		t.Errorf("add(40,-38) = %s %d, want int 2", res.Type, mem.DecodeInt(res.Bytes))
	}

	if _, err := p.Call("add", []Datum{arg(1)}); err == nil {
		t.Error("call with too few arguments should fail")
	}
	if _, err := p.Call("add", []Datum{arg(1), arg(2), arg(3)}); err == nil {
		t.Error("call with too many arguments to a non-variadic function should fail")
	}
	if _, err := p.Call("nosuch", nil); err == nil {
		t.Error("call of an undefined function should fail")
	}

	// A body-only function needs an interpreter.
	body := &Func{Name: "interp", Type: a.FuncOf(a.Int, nil, false), Body: "stub"}
	if err := p.DefineFunc(body); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call("interp", nil); err == nil || !strings.Contains(err.Error(), "no interpreter") {
		t.Errorf("body call without CallBody = %v, want a no-interpreter error", err)
	}
	called := false
	p.CallBody = func(pp *Process, f *Func, args []Datum) (Datum, error) {
		called = f == body && pp == p
		return arg(99), nil
	}
	res, err = p.Call("interp", nil)
	if err != nil || !called {
		t.Fatalf("CallBody hook not used: %v (called=%v)", err, called)
	}
	if mem.DecodeInt(res.Bytes) != 99 {
		t.Errorf("CallBody result %d, want 99", mem.DecodeInt(res.Bytes))
	}
}
