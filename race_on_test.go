//go:build race

package duel_test

// raceEnabled reports whether the race detector is compiled in; scaling
// measurements skip under it (see TestServeReadScaling).
const raceEnabled = true
