package duel_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"duel"
	"duel/internal/dbgif"
	"duel/internal/fakedbg"
)

// buildReadOnlyDebuggee builds the shared differential debuggee and then
// freezes it: every mutation past this point fails with ErrReadOnlyTarget,
// exactly like a core-dump substrate.
func buildReadOnlyDebuggee(t *testing.T) dbgif.Debugger {
	t.Helper()
	f := buildFakeDebuggee(t).(*fakedbg.Fake)
	f.ReadOnly = true
	return f
}

// TestReadOnlyTargetReads verifies that freezing the target is invisible to
// pure queries: every backend produces byte-identical output on the writable
// and the read-only debuggee.
func TestReadOnlyTargetReads(t *testing.T) {
	queries := []string{
		"x[..10] >? 4",
		"+/x[..10]",
		"head-->next->value",
		"#/(head-->next)",
		"x[..10] @ (_ < 0)",
	}
	for _, backend := range []string{"push", "machine", "chan", "compiled"} {
		t.Run(backend, func(t *testing.T) {
			rw := execQueries(t, backend, buildFakeDebuggee(t), queries)
			ro := execQueries(t, backend, buildReadOnlyDebuggee(t), queries)
			for i, q := range queries {
				if rw[i] != ro[i] {
					t.Errorf("query %q:\n writable:\n%s\n read-only:\n%s", q, indent(rw[i]), indent(ro[i]))
				}
			}
		})
	}
}

// TestReadOnlyTargetContainment runs every mutating construct against the
// frozen debuggee with ErrorValues on: each write lands as a per-element
// error value ("sym = <read-only target>") instead of aborting, and all four
// backends agree byte for byte.
func TestReadOnlyTargetContainment(t *testing.T) {
	cases := []struct {
		query string
		want  string
	}{
		{"x[0] = 5", "x[0] = <read-only target>\n"},
		{"x[1]++", "x[1] = <read-only target>\n"},
		{"--x[2]", "x[2] = <read-only target>\n"},
		{"x[0] += 3", "x[0] = <read-only target>\n"},
		{"twice(3)", "twice(3) = <read-only target>\n"},
		// Containment is per element: the generator keeps enumerating.
		{"x[..3] = 9", "x[0] = <read-only target>\nx[1] = <read-only target>\nx[2] = <read-only target>\n"},
		{"twice(x[2..4])", "twice(x[2]) = <read-only target>\ntwice(x[3]) = <read-only target>\ntwice(x[4]) = <read-only target>\n"},
	}
	queries := make([]string, len(cases))
	for i, c := range cases {
		queries[i] = c.query
	}
	var ref []string
	for _, backend := range []string{"push", "machine", "chan", "compiled"} {
		t.Run(backend, func(t *testing.T) {
			opts := duel.DefaultOptions()
			opts.Backend = backend
			opts.Eval.ErrorValues = true
			got := make([]string, len(queries))
			for i, q := range queries {
				ses, err := duel.NewSession(buildReadOnlyDebuggee(t), opts)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := ses.Exec(&buf, q); err != nil {
					t.Fatalf("query %q: %v", q, err)
				}
				got[i] = buf.String()
				if got[i] != cases[i].want {
					t.Errorf("query %q:\n got:\n%s\n want:\n%s", q, indent(got[i]), indent(cases[i].want))
				}
			}
			if ref == nil {
				ref = got
				return
			}
			for i, q := range queries {
				if got[i] != ref[i] {
					t.Errorf("query %q diverged from push backend:\n got:\n%s\n want:\n%s",
						q, indent(got[i]), indent(ref[i]))
				}
			}
		})
	}
}

// TestReadOnlyTargetAborts checks the strict mode (ErrorValues off) and the
// constructs that always need a writable target: declarations, assignments
// and calls abort with the typed sentinel, identically on every backend.
func TestReadOnlyTargetAborts(t *testing.T) {
	queries := []string{"int i;", "x[0] = 5", "x[1]++", "twice(3)"}
	var ref []string
	for _, backend := range []string{"push", "machine", "chan", "compiled"} {
		t.Run(backend, func(t *testing.T) {
			opts := duel.DefaultOptions()
			opts.Backend = backend
			got := make([]string, len(queries))
			for i, q := range queries {
				ses, err := duel.NewSession(buildReadOnlyDebuggee(t), opts)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				execErr := ses.Exec(&buf, q)
				if execErr == nil {
					t.Fatalf("query %q: expected an error on a read-only target, got output:\n%s",
						q, indent(buf.String()))
				}
				if !errors.Is(execErr, dbgif.ErrReadOnlyTarget) {
					t.Errorf("query %q: error %v does not wrap dbgif.ErrReadOnlyTarget", q, execErr)
				}
				got[i] = execErr.Error()
			}
			if ref == nil {
				ref = got
				return
			}
			for i, q := range queries {
				if got[i] != ref[i] {
					t.Errorf("query %q error diverged from push backend:\n got:  %s\n want: %s",
						q, got[i], ref[i])
				}
			}
		})
	}
}

// TestReadOnlyDeclAlwaysAborts pins down that declarations cannot be
// contained: they allocate target storage, so even with ErrorValues on the
// command fails cleanly instead of registering a dangling alias.
func TestReadOnlyDeclAlwaysAborts(t *testing.T) {
	for _, backend := range []string{"push", "machine", "chan", "compiled"} {
		t.Run(backend, func(t *testing.T) {
			opts := duel.DefaultOptions()
			opts.Backend = backend
			opts.Eval.ErrorValues = true
			ses, err := duel.NewSession(buildReadOnlyDebuggee(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			execErr := ses.Exec(&buf, "int i;")
			if execErr == nil {
				t.Fatal("declaration on a read-only target succeeded")
			}
			if !errors.Is(execErr, dbgif.ErrReadOnlyTarget) {
				t.Errorf("error %v does not wrap dbgif.ErrReadOnlyTarget", execErr)
			}
			if !strings.Contains(execErr.Error(), `allocating "i"`) {
				t.Errorf("error %v does not name the declared variable", execErr)
			}
			// The failed declaration must not leave an alias behind.
			var out bytes.Buffer
			if err := ses.Exec(&out, "x[0]"); err != nil {
				t.Errorf("session unusable after failed declaration: %v", err)
			}
		})
	}
}
