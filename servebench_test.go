package duel_test

// Serving-layer benchmarks (see internal/serve):
//
//	BenchmarkServeThroughput — concurrent queries/sec through the server's
//	                           admission path at 1, 4 and 16 workers
//	BenchmarkServeOverload   — shed rate when submitters outrun a tiny pool
//
// Run: go test -bench=Serve -benchmem
//
// Contention profiling: the serializers on the read path were named by
// running these benchmarks with the runtime's lock profilers,
//
//	go test -run=NONE -bench ServeThroughput -benchtime 2000x \
//	    -mutexprofile serve-mutex.prof -blockprofile serve-block.prof .
//	go tool pprof serve-mutex.prof   # who held contended locks
//	go tool pprof serve-block.prof   # who waited on channels/locks
//
// (the CI bench job produces and uploads both profiles as artifacts).
// That profile is what motivated the serve layer's atomic stats, worker
// session affinity, epoch-based cache flush and lock-free breaker fast
// path; TestServeReadScaling below keeps the result honest.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"duel"
	"duel/internal/dbgif"
	"duel/internal/scenarios"
	"duel/internal/serve"
)

// benchServer stands up a server over an int-array debuggee.
func benchServer(b testing.TB, workers, queueDepth int) *serve.Server {
	b.Helper()
	d, err := scenarios.BuildIntArray(256, func(i int) int64 { return int64(i%7) - 3 })
	if err != nil {
		b.Fatal(err)
	}
	opts := duel.DefaultOptions()
	opts.Backend = "compiled"
	srv := serve.New(serve.Config{Workers: workers, QueueDepth: queueDepth, Session: opts})
	srv.Register("bench", d)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

const benchServeQuery = "x[..64] >? 1000"

// BenchmarkServeThroughput measures end-to-end concurrent query throughput
// through the serving layer — admission, session pool, read lock, governed
// evaluation — with the submitter count pinned to the worker count so the
// queue absorbs bursts instead of shedding.
func BenchmarkServeThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := benchServer(b, workers, 4*workers)
			ctx := context.Background()
			// Warm the pool and the program caches.
			if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var failed atomic.Int64
			per := b.N / workers
			extra := b.N % workers
			for g := 0; g < workers; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
							failed.Add(1)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			if f := failed.Load(); f > 0 {
				b.Fatalf("%d/%d queries failed", f, b.N)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeOverload measures admission control under deliberate
// overload: 32 submitters against one worker and a one-slot queue. Sheds
// are expected — the point is that they are fast, typed refusals instead
// of deadlocks — and the shed fraction is reported per run.
func BenchmarkServeOverload(b *testing.B) {
	srv := benchServer(b, 1, 1)
	ctx := context.Background()
	if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
		b.Fatal(err)
	}
	const submitters = 32
	var shed, other atomic.Int64
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				_, err := srv.Eval(ctx, "bench", benchServeQuery)
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					shed.Add(1)
				case err != nil:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if o := other.Load(); o > 0 {
		b.Fatalf("%d queries failed with non-overload errors", o)
	}
	b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/op")
}

// serveThroughput measures read-only queries/s through srv: `workers`
// submitters evaluate the benchmark query in a closed loop for roughly `d`,
// after a warmup pass that populates the session pool and the
// compiled-program caches.
func serveThroughput(t testing.TB, srv *serve.Server, workers int, d time.Duration) float64 {
	ctx := context.Background()
	var warm sync.WaitGroup
	for g := 0; g < workers; g++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			for i := 0; i < 8; i++ {
				if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
					t.Errorf("warmup: %v", err)
					return
				}
			}
		}()
	}
	warm.Wait()

	var done atomic.Bool
	var n atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
					t.Errorf("eval: %v", err)
					return
				}
				n.Add(1)
			}
		}()
	}
	time.Sleep(d)
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := srv.Stats()
	if st.Completed > st.Admitted {
		t.Errorf("inconsistent stats after run: %+v", st)
	}
	return float64(n.Load()) / elapsed.Seconds()
}

// hedgeServer stands up a server like benchServer with hedging configured.
// The hedge delay is pinned far above the query's actual latency, so on a
// healthy target the hedge timer never fires: what these measurements see is
// the pure happy-path cost of the hedging machinery (the timer, the private
// result buffer, the winner replay).
func hedgeServer(b testing.TB, workers int, hedge bool) *serve.Server {
	b.Helper()
	d, err := scenarios.BuildIntArray(256, func(i int) int64 { return int64(i%7) - 3 })
	if err != nil {
		b.Fatal(err)
	}
	opts := duel.DefaultOptions()
	opts.Backend = "compiled"
	srv := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: 4 * workers,
		Session:    opts,
		Hedge:      serve.HedgeConfig{Enabled: hedge, Delay: 50 * time.Millisecond},
	})
	srv.Register("bench", d)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// BenchmarkServeHedgedRead measures read-only throughput with hedging off
// and on against a healthy target. The two sub-benchmarks differ only in the
// hedging machinery; their gap is the happy-path overhead the <5% acceptance
// gate bounds (the CI bench-json compare watches this benchmark).
func BenchmarkServeHedgedRead(b *testing.B) {
	for _, hedge := range []bool{false, true} {
		b.Run(fmt.Sprintf("hedge=%v", hedge), func(b *testing.B) {
			const workers = 4
			srv := hedgeServer(b, workers, hedge)
			ctx := context.Background()
			if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var failed atomic.Int64
			per := b.N / workers
			extra := b.N % workers
			for g := 0; g < workers; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
							failed.Add(1)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			if f := failed.Load(); f > 0 {
				b.Fatalf("%d/%d queries failed", f, b.N)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
		})
	}
}

// readCountingTarget wraps the benchmark debuggee and counts host read
// round-trips so the batching benchmark can report hostreads/op.
type readCountingTarget struct {
	dbgif.Debugger
	reads atomic.Int64
}

func (c *readCountingTarget) GetTargetBytes(addr uint64, n int) ([]byte, error) {
	c.reads.Add(1)
	return c.Debugger.GetTargetBytes(addr, n)
}

// batchServer stands up a server like benchServer with read coalescing
// configured and the target's host reads counted.
func batchServer(b testing.TB, workers int, batch serve.BatchConfig) (*serve.Server, *readCountingTarget) {
	b.Helper()
	d, err := scenarios.BuildIntArray(256, func(i int) int64 { return int64(i%7) - 3 })
	if err != nil {
		b.Fatal(err)
	}
	ct := &readCountingTarget{Debugger: d}
	opts := duel.DefaultOptions()
	opts.Backend = "compiled"
	srv := serve.New(serve.Config{Workers: workers, QueueDepth: 8 * workers, Session: opts, Batch: batch})
	srv.Register("bench", ct)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return srv, ct
}

// BenchmarkServeBatchedRead measures what read coalescing buys: the same
// concurrent read-only load with batching off and at BatchSize 8, reporting
// target-lock acquisitions and host read round-trips per query alongside
// throughput. The acceptance gate is >=2x fewer locks/op and hostreads/op
// at batch=8 — one shared acquisition and one warm pass per batch instead
// of one of each per query.
func BenchmarkServeBatchedRead(b *testing.B) {
	const workers, submitters = 4, 16
	for _, cfg := range []struct {
		name  string
		batch serve.BatchConfig
	}{
		{"batch=off", serve.BatchConfig{}},
		{"batch=8", serve.BatchConfig{Enabled: true, BatchSize: 8, MaxWait: 200 * time.Microsecond}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			srv, ct := batchServer(b, workers, cfg.batch)
			ctx := context.Background()
			if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
				b.Fatal(err)
			}
			locks0 := srv.Stats().TargetLocks
			reads0 := ct.reads.Load()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var failed atomic.Int64
			per := b.N / submitters
			extra := b.N % submitters
			for g := 0; g < submitters; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
							failed.Add(1)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if f := failed.Load(); f > 0 {
				b.Fatalf("%d/%d queries failed", f, b.N)
			}
			st := srv.Stats()
			b.ReportMetric(float64(st.TargetLocks-locks0)/float64(b.N), "locks/op")
			b.ReportMetric(float64(ct.reads.Load()-reads0)/float64(b.N), "hostreads/op")
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeStream measures the streaming submit path: concurrent reads
// delivered value by value through SubmitStream instead of collected
// transcripts. Unlike benchServeQuery (which filters everything out so
// throughput isolates eval cost), this query emits a value per element so
// the per-value emit path is actually on the clock.
func BenchmarkServeStream(b *testing.B) {
	const workers = 4
	const streamQuery = "x[..16]"
	srv := benchServer(b, workers, 4*workers)
	ctx := context.Background()
	if _, err := srv.Eval(ctx, "bench", streamQuery); err != nil {
		b.Fatal(err)
	}
	var values atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int64
	per := b.N / workers
	extra := b.N % workers
	for g := 0; g < workers; g++ {
		n := per
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				err := srv.SubmitStream(ctx, "bench", streamQuery, serve.SubmitOptions{},
					func(serve.StreamValue) error {
						values.Add(1)
						return nil
					})
				if err != nil {
					failed.Add(1)
				}
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if f := failed.Load(); f > 0 {
		b.Fatalf("%d/%d queries failed", f, b.N)
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
	b.ReportMetric(float64(values.Load())/float64(b.N), "values/op")
}

// TestHedgeHappyPathOverhead keeps the hedging machinery honest: with the
// hedge timer pinned far above the query latency, enabling hedging must not
// cost read throughput. The acceptance bar is 5% on an idle host; the
// assertion leaves margin below it so a loaded CI neighbor cannot flake the
// build while a real regression (a hedge that always fires, a serializer on
// the hedge path) still fails decisively.
func TestHedgeHappyPathOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement: skipped under -short")
	}
	if raceEnabled {
		t.Skip("overhead measurement: skipped under -race")
	}
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("overhead measurement needs >=2 CPUs, have GOMAXPROCS=%d", p)
	}
	const window = 300 * time.Millisecond
	base := serveThroughput(t, hedgeServer(t, 4, false), 4, window)
	hedged := serveThroughput(t, hedgeServer(t, 4, true), 4, window)
	ratio := hedged / base
	t.Logf("read-only throughput: hedge=off %.0f q/s, hedge=on %.0f q/s (%.2fx)", base, hedged, ratio)
	if ratio < 0.80 {
		t.Errorf("hedging costs %.0f%% of read throughput (%.0f vs %.0f q/s); the happy path has regressed", (1-ratio)*100, hedged, base)
	}
}

// TestServeReadScaling is the scaling regression test for ROADMAP Open
// item 1: on a multi-core host, 4 workers must deliver materially more
// read-only queries/s than 1 worker. The serve layer's whole point is that
// read-dominated DUEL traffic shares the target under a read lock with no
// per-query serializer — a regression that re-flattens the curve (a shared
// mutex on the hot path, an accidental exclusive lock for read queries)
// fails here long before a human reads a benchmark chart.
//
// Skipped under -short, on hosts without 4 CPUs (a single core serializes
// workers no matter what the code does), and under -race (the race
// runtime's own synchronization dominates the schedule).
func TestServeReadScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement: skipped under -short")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("scaling measurement needs >=4 CPUs, have GOMAXPROCS=%d", p)
	}
	if c := runtime.NumCPU(); c < 4 {
		// GOMAXPROCS can be forced above the hardware by the environment;
		// only real cores run workers in parallel.
		t.Skipf("scaling measurement needs >=4 CPUs, have %d", c)
	}
	if raceEnabled {
		t.Skip("scaling measurement: skipped under -race")
	}
	const window = 300 * time.Millisecond
	q1 := serveThroughput(t, benchServer(t, 1, 4), 1, window)
	q4 := serveThroughput(t, benchServer(t, 4, 16), 4, window)
	ratio := q4 / q1
	t.Logf("read-only throughput: workers=1 %.0f q/s, workers=4 %.0f q/s (%.2fx)", q1, q4, ratio)
	// The acceptance bar is 2.5x on an idle 4-core host; assert a safety
	// margin below it so a loaded CI neighbor cannot flake the build while
	// a true re-serialization (ratio ~1.0) still fails decisively.
	if ratio < 1.8 {
		t.Errorf("workers=4 delivers only %.2fx the throughput of workers=1 (%.0f vs %.0f q/s); the read path has re-serialized", ratio, q4, q1)
	}
}
