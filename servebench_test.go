package duel_test

// Serving-layer benchmarks (see internal/serve):
//
//	BenchmarkServeThroughput — concurrent queries/sec through the server's
//	                           admission path at 1, 4 and 16 workers
//	BenchmarkServeOverload   — shed rate when submitters outrun a tiny pool
//
// Run: go test -bench=Serve -benchmem

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"duel"
	"duel/internal/scenarios"
	"duel/internal/serve"
)

// benchServer stands up a server over an int-array debuggee.
func benchServer(b *testing.B, workers, queueDepth int) *serve.Server {
	b.Helper()
	d, err := scenarios.BuildIntArray(256, func(i int) int64 { return int64(i%7) - 3 })
	if err != nil {
		b.Fatal(err)
	}
	opts := duel.DefaultOptions()
	opts.Backend = "compiled"
	srv := serve.New(serve.Config{Workers: workers, QueueDepth: queueDepth, Session: opts})
	srv.Register("bench", d)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

const benchServeQuery = "x[..64] >? 1000"

// BenchmarkServeThroughput measures end-to-end concurrent query throughput
// through the serving layer — admission, session pool, read lock, governed
// evaluation — with the submitter count pinned to the worker count so the
// queue absorbs bursts instead of shedding.
func BenchmarkServeThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := benchServer(b, workers, 4*workers)
			ctx := context.Background()
			// Warm the pool and the program caches.
			if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var failed atomic.Int64
			per := b.N / workers
			extra := b.N % workers
			for g := 0; g < workers; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
							failed.Add(1)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			if f := failed.Load(); f > 0 {
				b.Fatalf("%d/%d queries failed", f, b.N)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeOverload measures admission control under deliberate
// overload: 32 submitters against one worker and a one-slot queue. Sheds
// are expected — the point is that they are fast, typed refusals instead
// of deadlocks — and the shed fraction is reported per run.
func BenchmarkServeOverload(b *testing.B) {
	srv := benchServer(b, 1, 1)
	ctx := context.Background()
	if _, err := srv.Eval(ctx, "bench", benchServeQuery); err != nil {
		b.Fatal(err)
	}
	const submitters = 32
	var shed, other atomic.Int64
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				_, err := srv.Eval(ctx, "bench", benchServeQuery)
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					shed.Add(1)
				case err != nil:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if o := other.Load(); o > 0 {
		b.Fatalf("%d queries failed with non-overload errors", o)
	}
	b.ReportMetric(float64(shed.Load())/float64(b.N), "shed/op")
}
