package duel_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"duel"
	"duel/internal/core"
	"duel/internal/ctype"
	"duel/internal/debugger"
	"duel/internal/microc"
	"duel/internal/scenarios"
	"duel/internal/target"
)

func TestSessionOptions(t *testing.T) {
	d := newArrayTarget(t)
	// Unknown backend is rejected.
	bad := duel.DefaultOptions()
	bad.Backend = "quantum"
	if _, err := duel.NewSession(d, bad); err == nil {
		t.Error("unknown backend accepted")
	}
	// Symbolic display off.
	opts := duel.DefaultOptions()
	opts.ShowSymbolic = false
	s := duel.MustNewSession(d, opts)
	var sb strings.Builder
	if err := s.Exec(&sb, "x[2]"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "7" {
		t.Errorf("non-symbolic output = %q", sb.String())
	}
}

func TestSessionMaxOutput(t *testing.T) {
	d := newArrayTarget(t)
	opts := duel.DefaultOptions()
	opts.MaxOutput = 3
	s := duel.MustNewSession(d, opts)
	var sb strings.Builder
	// Truncation stops evaluation but is not an error: the marker line is
	// the caller's signal.
	if err := s.Exec(&sb, "0..100"); err != nil {
		t.Fatalf("truncation surfaced as an error: %v", err)
	}
	if !strings.Contains(sb.String(), "truncated") {
		t.Errorf("no truncation marker:\n%s", sb.String())
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 4 { // 3 values + marker
		t.Errorf("printed %d lines", lines)
	}
}

// TestEvalOptionsNormalized checks that caller-supplied evaluation options
// are normalized field-by-field: explicit settings such as Symbolic: false
// survive even when the safety limits are left zero (they used to be
// clobbered by a wholesale reset to the defaults).
func TestEvalOptionsNormalized(t *testing.T) {
	d := newArrayTarget(t)
	opts := duel.Options{Eval: core.Options{Symbolic: false, MaxSteps: 50}}
	s := duel.MustNewSession(d, opts)
	if _, err := s.Eval("x[..4] >? 0"); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.SymOps != 0 {
		t.Errorf("SymOps = %d; explicit Symbolic: false was clobbered by normalization", c.SymOps)
	}
	// The zero-valued limits are raised to the defaults, so an unbounded
	// generator still fails loudly instead of hanging; MaxSteps aborts this
	// one long before MaxOpenRange would.
	if _, err := s.Eval("#/(0..)"); err == nil {
		t.Error("unbounded generator ran without a limit")
	}
}

func TestResultLine(t *testing.T) {
	cases := []struct {
		r    duel.Result
		want string
	}{
		{duel.Result{Sym: "x[3]", Text: "7"}, "x[3] = 7"},
		{duel.Result{Sym: "7", Text: "7"}, "7"},
		{duel.Result{Sym: "", Text: "9"}, "9"},
	}
	for _, c := range cases {
		if got := c.r.Line(); got != c.want {
			t.Errorf("Line = %q, want %q", got, c.want)
		}
	}
}

func TestAliasesPersistAndClear(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	if _, err := s.Eval("m := 41"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Eval("m + 1")
	if err != nil || len(res) != 1 || res[0].Text != "42" {
		t.Fatalf("alias reuse: %v %v", res, err)
	}
	s.ClearAliases()
	if _, err := s.Eval("m"); err == nil {
		t.Error("alias survived ClearAliases")
	}
}

func TestCountersExposed(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	s.ResetCounters()
	if _, err := s.Eval("(1..10)+1"); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Applies < 10 || c.Values == 0 {
		t.Errorf("counters = %+v", c)
	}
}

// TestLP64EndToEnd runs a micro-C program and DUEL queries under the LP64
// data model: 8-byte longs and pointers throughout.
func TestLP64EndToEnd(t *testing.T) {
	p := target.MustNewProcess(target.Config{Model: ctype.LP64, DataSize: 1 << 20, HeapSize: 1 << 20, StackSize: 1 << 16})
	d := debugger.New(p)
	in, err := microc.Load(p, d, `
struct node { long v; struct node *next; };
struct node *head;
long big = 5000000000;

void push(long val) {
	struct node *n;
	n = (struct node *) malloc(sizeof(struct node));
	n->v = val;
	n->next = head;
	head = n;
}
int main() { push(1); push(2); push(3); return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(nil); err != nil {
		t.Fatal(err)
	}
	s := duel.MustNewSession(d)

	res, err := s.Eval("sizeof(struct node)")
	if err != nil || len(res) != 1 || res[0].Text != "16" {
		t.Fatalf("LP64 sizeof(struct node) = %v, %v (want 16)", res, err)
	}
	res, err = s.Eval("big")
	if err != nil || res[0].Text != "5000000000" {
		t.Fatalf("LP64 long value = %v, %v", res, err)
	}
	var lines []string
	if err := s.EvalFunc("head-->next->v", func(r duel.Result) error {
		lines = append(lines, r.Line())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"head->v = 3", "head->next->v = 2", "head->next->next->v = 1"}
	if strings.Join(lines, "|") != strings.Join(want, "|") {
		t.Errorf("LP64 list walk = %q", lines)
	}
}

// TestErrorMessageFormat checks the paper's "Illegal memory reference"
// message shape through the public API.
func TestErrorMessageFormat(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	_, err := s.Eval("((struct nothing *)8)->f")
	if err == nil {
		t.Skip("struct tag unknown; covered in debugger tests")
	}
	d2 := testScenario(t, scenarios.Symtab)
	s2 := duel.MustNewSession(d2)
	_, err = s2.Eval("((struct symbol *)48)->scope")
	if err == nil {
		t.Fatal("dereference through invalid pointer succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "Illegal memory reference") || !strings.Contains(msg, "0x30") {
		t.Errorf("message = %q", msg)
	}
}

// TestNullGuardIdiom exercises the paper's "_ &&" guard: evaluating fields
// through NULL errors, but guarding with _ does not.
func TestNullGuardIdiom(t *testing.T) {
	d := testScenario(t, scenarios.Symtab)
	s := duel.MustNewSession(d)
	// Unguarded: hash[2] is NULL, field access faults.
	if _, err := s.Eval("hash[2]->scope"); err == nil {
		t.Error("field through NULL succeeded")
	}
	// Guarded: no error, no values.
	res, err := s.Eval("hash[2]->(if (_ && scope > 5) name)")
	if err != nil {
		t.Errorf("guarded access failed: %v", err)
	}
	if len(res) != 0 {
		t.Errorf("guarded access produced %v", res)
	}
}

func TestLookupCacheOption(t *testing.T) {
	d := newArrayTarget(t)
	opts := duel.DefaultOptions()
	opts.Eval.LookupCache = true
	s := duel.MustNewSession(d, opts)
	res, err := s.Eval("(1..5)+x[0]")
	if err != nil || len(res) != 5 {
		t.Fatalf("cached eval: %v, %v", res, err)
	}
	// Mutation between evals must be visible (the cache is per-eval).
	if _, err := s.Eval("x[0] = 9"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Eval("x[0]")
	if err != nil || res[0].Text != "9" {
		t.Errorf("stale value after mutation: %v", res)
	}
}

// TestMemCacheRoundTrips is the acceptance check for the memio layer: with
// the page cache on, the paper's 100k-element scan issues >10x fewer
// GetTargetBytes round-trips to the host debugger while asking for exactly
// the same bytes and printing exactly the same output.
func TestMemCacheRoundTrips(t *testing.T) {
	const n = 100000
	query := "x[..100000] >? 0"
	run := func(cache bool) (string, core.Counters) {
		t.Helper()
		d, err := scenarios.BuildIntArray(n, func(i int) int64 { return int64(i%7) - 3 })
		if err != nil {
			t.Fatal(err)
		}
		opts := duel.DefaultOptions()
		opts.Eval.MemCache = cache
		s := duel.MustNewSession(d, opts)
		var sb strings.Builder
		if err := s.Exec(&sb, query); err != nil {
			t.Fatal(err)
		}
		return sb.String(), s.Counters()
	}
	outOff, off := run(false)
	outOn, on := run(true)
	if outOff != outOn {
		t.Fatalf("output differs cache-on vs cache-off:\n off %d bytes\n on  %d bytes", len(outOff), len(outOn))
	}
	// The engine-side trace is identical: same requests, same bytes.
	if off.TargetReads != on.TargetReads || off.TargetBytes != on.TargetBytes {
		t.Errorf("engine read trace differs: off %d reads/%d bytes, on %d reads/%d bytes",
			off.TargetReads, off.TargetBytes, on.TargetReads, on.TargetBytes)
	}
	// Cache off is faithful: one host round-trip per engine read.
	if off.HostReads != off.TargetReads {
		t.Errorf("cache off: %d host reads for %d engine reads", off.HostReads, off.TargetReads)
	}
	if on.HostReads*10 >= off.HostReads {
		t.Errorf("cache on: %d host reads vs %d off — want >10x fewer", on.HostReads, off.HostReads)
	}
	if on.CacheHits == 0 || on.CacheMisses == 0 {
		t.Errorf("cache counters not merged: %+v", on)
	}
}

// TestMemCacheListWalk checks the other hot shape from the paper — a -->next
// list walk — stays correct and cheaper with the cache on, including after a
// mutation through the session (write-through invalidation).
func TestMemCacheListWalk(t *testing.T) {
	run := func(cache bool) (string, core.Counters) {
		t.Helper()
		d, err := scenarios.BuildLongList(500)
		if err != nil {
			t.Fatal(err)
		}
		opts := duel.DefaultOptions()
		opts.Eval.MemCache = cache
		s := duel.MustNewSession(d, opts)
		var sb strings.Builder
		if err := s.Exec(&sb, "#/(head-->next)"); err != nil {
			t.Fatal(err)
		}
		// Mutate through the session, then re-read: the cache must not
		// serve the stale head value.
		if err := s.Exec(&sb, "head->value = 4242"); err != nil {
			t.Fatal(err)
		}
		if err := s.Exec(&sb, "head->value"); err != nil {
			t.Fatal(err)
		}
		return sb.String(), s.Counters()
	}
	outOff, off := run(false)
	outOn, on := run(true)
	if outOff != outOn {
		t.Fatalf("output differs cache-on vs cache-off:\n off:\n%s\n on:\n%s", outOff, outOn)
	}
	if !strings.Contains(outOn, "4242") {
		t.Fatalf("stale value after write-through invalidation:\n%s", outOn)
	}
	if on.HostReads >= off.HostReads {
		t.Errorf("list walk: cache on issued %d host reads, off %d", on.HostReads, off.HostReads)
	}
	if on.Invalidations == 0 {
		t.Errorf("no invalidations recorded after a store: %+v", on)
	}
}

// TestConcurrentSessionsSharedProcess runs several cache-enabled sessions
// concurrently over one simulated process; run under -race (CI does) this
// pins down that each session's accessor is internally synchronized.
func TestConcurrentSessionsSharedProcess(t *testing.T) {
	d, err := scenarios.BuildIntArray(4096, func(i int) int64 { return int64(i) - 2048 })
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"x[..512] >? 500", "+/x[..1024]", "#/(x[..2048] <? 0)"}
	var want []string
	{
		s := duel.MustNewSession(d)
		for _, q := range queries {
			var sb strings.Builder
			if err := s.Exec(&sb, q); err != nil {
				t.Fatal(err)
			}
			want = append(want, sb.String())
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := duel.DefaultOptions()
			opts.Eval.MemCache = true
			opts.Eval.MemCachePageSize = 64 << (g % 3)
			s := duel.MustNewSession(d, opts)
			for i := 0; i < 5; i++ {
				for qi, q := range queries {
					var sb strings.Builder
					if err := s.Exec(&sb, q); err != nil {
						errc <- err
						return
					}
					if sb.String() != want[qi] {
						errc <- fmt.Errorf("goroutine %d query %q diverged", g, q)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// testScenario builds one canned debuggee, failing the test (not the
// process) on error — scenarios.Build no longer panics.
func testScenario(t *testing.T, name string) *debugger.Debugger {
	t.Helper()
	d, _, err := scenarios.Build(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
