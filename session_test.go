package duel_test

import (
	"strings"
	"testing"

	"duel"
	"duel/internal/ctype"
	"duel/internal/debugger"
	"duel/internal/microc"
	"duel/internal/scenarios"
	"duel/internal/target"
)

func TestSessionOptions(t *testing.T) {
	d := newArrayTarget(t)
	// Unknown backend is rejected.
	bad := duel.DefaultOptions()
	bad.Backend = "quantum"
	if _, err := duel.NewSession(d, bad); err == nil {
		t.Error("unknown backend accepted")
	}
	// Symbolic display off.
	opts := duel.DefaultOptions()
	opts.ShowSymbolic = false
	s := duel.MustNewSession(d, opts)
	var sb strings.Builder
	if err := s.Exec(&sb, "x[2]"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "7" {
		t.Errorf("non-symbolic output = %q", sb.String())
	}
}

func TestSessionMaxOutput(t *testing.T) {
	d := newArrayTarget(t)
	opts := duel.DefaultOptions()
	opts.MaxOutput = 3
	s := duel.MustNewSession(d, opts)
	var sb strings.Builder
	err := s.Exec(&sb, "0..100")
	if err == nil {
		t.Fatal("truncation did not stop evaluation")
	}
	if !strings.Contains(sb.String(), "truncated") {
		t.Errorf("no truncation marker:\n%s", sb.String())
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 4 { // 3 values + marker
		t.Errorf("printed %d lines", lines)
	}
}

func TestResultLine(t *testing.T) {
	cases := []struct {
		r    duel.Result
		want string
	}{
		{duel.Result{Sym: "x[3]", Text: "7"}, "x[3] = 7"},
		{duel.Result{Sym: "7", Text: "7"}, "7"},
		{duel.Result{Sym: "", Text: "9"}, "9"},
	}
	for _, c := range cases {
		if got := c.r.Line(); got != c.want {
			t.Errorf("Line = %q, want %q", got, c.want)
		}
	}
}

func TestAliasesPersistAndClear(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	if _, err := s.Eval("m := 41"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Eval("m + 1")
	if err != nil || len(res) != 1 || res[0].Text != "42" {
		t.Fatalf("alias reuse: %v %v", res, err)
	}
	s.ClearAliases()
	if _, err := s.Eval("m"); err == nil {
		t.Error("alias survived ClearAliases")
	}
}

func TestCountersExposed(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	s.ResetCounters()
	if _, err := s.Eval("(1..10)+1"); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Applies < 10 || c.Values == 0 {
		t.Errorf("counters = %+v", c)
	}
}

// TestLP64EndToEnd runs a micro-C program and DUEL queries under the LP64
// data model: 8-byte longs and pointers throughout.
func TestLP64EndToEnd(t *testing.T) {
	p := target.MustNewProcess(target.Config{Model: ctype.LP64, DataSize: 1 << 20, HeapSize: 1 << 20, StackSize: 1 << 16})
	d := debugger.New(p)
	in, err := microc.Load(p, d, `
struct node { long v; struct node *next; };
struct node *head;
long big = 5000000000;

void push(long val) {
	struct node *n;
	n = (struct node *) malloc(sizeof(struct node));
	n->v = val;
	n->next = head;
	head = n;
}
int main() { push(1); push(2); push(3); return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(nil); err != nil {
		t.Fatal(err)
	}
	s := duel.MustNewSession(d)

	res, err := s.Eval("sizeof(struct node)")
	if err != nil || len(res) != 1 || res[0].Text != "16" {
		t.Fatalf("LP64 sizeof(struct node) = %v, %v (want 16)", res, err)
	}
	res, err = s.Eval("big")
	if err != nil || res[0].Text != "5000000000" {
		t.Fatalf("LP64 long value = %v, %v", res, err)
	}
	var lines []string
	if err := s.EvalFunc("head-->next->v", func(r duel.Result) error {
		lines = append(lines, r.Line())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"head->v = 3", "head->next->v = 2", "head->next->next->v = 1"}
	if strings.Join(lines, "|") != strings.Join(want, "|") {
		t.Errorf("LP64 list walk = %q", lines)
	}
}

// TestErrorMessageFormat checks the paper's "Illegal memory reference"
// message shape through the public API.
func TestErrorMessageFormat(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)
	_, err := s.Eval("((struct nothing *)8)->f")
	if err == nil {
		t.Skip("struct tag unknown; covered in debugger tests")
	}
	d2 := scenarios.MustBuild(scenarios.Symtab, nil)
	s2 := duel.MustNewSession(d2)
	_, err = s2.Eval("((struct symbol *)48)->scope")
	if err == nil {
		t.Fatal("dereference through invalid pointer succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "Illegal memory reference") || !strings.Contains(msg, "0x30") {
		t.Errorf("message = %q", msg)
	}
}

// TestNullGuardIdiom exercises the paper's "_ &&" guard: evaluating fields
// through NULL errors, but guarding with _ does not.
func TestNullGuardIdiom(t *testing.T) {
	d := scenarios.MustBuild(scenarios.Symtab, nil)
	s := duel.MustNewSession(d)
	// Unguarded: hash[2] is NULL, field access faults.
	if _, err := s.Eval("hash[2]->scope"); err == nil {
		t.Error("field through NULL succeeded")
	}
	// Guarded: no error, no values.
	res, err := s.Eval("hash[2]->(if (_ && scope > 5) name)")
	if err != nil {
		t.Errorf("guarded access failed: %v", err)
	}
	if len(res) != 0 {
		t.Errorf("guarded access produced %v", res)
	}
}

func TestLookupCacheOption(t *testing.T) {
	d := newArrayTarget(t)
	opts := duel.DefaultOptions()
	opts.Eval.LookupCache = true
	s := duel.MustNewSession(d, opts)
	res, err := s.Eval("(1..5)+x[0]")
	if err != nil || len(res) != 5 {
		t.Fatalf("cached eval: %v, %v", res, err)
	}
	// Mutation between evals must be visible (the cache is per-eval).
	if _, err := s.Eval("x[0] = 9"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Eval("x[0]")
	if err != nil || res[0].Text != "9" {
		t.Errorf("stale value after mutation: %v", res)
	}
}
