package duel_test

import (
	"strings"
	"testing"

	"duel"
	"duel/internal/debugger"
	"duel/internal/target"
)

// newArrayTarget builds a process with "int x[10]" = {3, -1, 7, 0, 9, 2, -4, 8, 1, 6}.
func newArrayTarget(t *testing.T) *debugger.Debugger {
	t.Helper()
	p := target.MustNewProcess(target.Config{Model: 0, DataSize: 1 << 20, HeapSize: 1 << 20, StackSize: 1 << 16})
	arr := p.Arch.ArrayOf(p.Arch.Int, 10)
	v, err := p.DefineGlobal("x", arr)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{3, -1, 7, 0, 9, 2, -4, 8, 1, 6}
	for i, x := range vals {
		if err := p.PokeInt(v.Addr+uint64(4*i), p.Arch.Int, x); err != nil {
			t.Fatal(err)
		}
	}
	return debugger.New(p)
}

func evalLines(t *testing.T, s *duel.Session, src string) []string {
	t.Helper()
	var sb strings.Builder
	if err := s.Exec(&sb, src); err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	out := strings.TrimRight(sb.String(), "\n")
	if out == "" {
		return nil
	}
	return strings.Split(out, "\n")
}

func TestSmoke(t *testing.T) {
	d := newArrayTarget(t)
	s := duel.MustNewSession(d)

	cases := []struct {
		src  string
		want []string
	}{
		{"1 + (double)3/2", []string{"1+(double)3/2 = 2.5"}},
		{"(1,2,5)*4+(10,200)", []string{
			"1*4+10 = 14", "1*4+200 = 204",
			"2*4+10 = 18", "2*4+200 = 208",
			"5*4+10 = 30", "5*4+200 = 220",
		}},
		{"(3,11)+(5..7)", []string{
			"3+5 = 8", "3+6 = 9", "3+7 = 10",
			"11+5 = 16", "11+6 = 17", "11+7 = 18",
		}},
		{"x[0..3] >? 1", []string{"x[0] = 3", "x[2] = 7"}},
		{"x[1..3] == 7", []string{"x[1]==7 = 0", "x[2]==7 = 1", "x[3]==7 = 0"}},
		{"i := 1..3; i + 4", []string{"i+4 = 7"}},
		{"i := 1..3 => {i} + 4", []string{"1+4 = 5", "2+4 = 6", "3+4 = 7"}},
		{"#/(x[..10] >? 0)", []string{"7"}},
		{"((1..9)*(1..9))[[52,74]]", []string{"6*8 = 48", "9*3 = 27"}},
	}
	for _, c := range cases {
		got := evalLines(t, s, c.src)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%q:\n got  %q\n want %q", c.src, got, c.want)
		}
	}
}
